(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and an event heap.  Work is
    expressed as {e processes}: ordinary OCaml functions that may call
    the blocking operations {!delay}, {!suspend} and {!yield}, which are
    implemented with effect handlers so that a process is suspended and
    resumed without threads.  Events scheduled for the same instant run
    in schedule order, so a run is a pure function of the seed and the
    program.

    Blocking synchronisation primitives (conditions, semaphores,
    mailboxes, resources) are built outside this module from {!suspend}
    / {!wake}. *)

module Pid : sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_int : t -> int
  val name : t -> string
  val pp : Format.formatter -> t -> unit
end

type t

exception Killed
(** Raised inside a process that is being killed, at its current
    blocking point, so that [Fun.protect] finalisers run. *)

exception Stalled_waiting
(** Raised inside a process whose suspension can never be woken because
    the simulation ran out of events while it was blocked (detected at
    end of run; see {!run}). *)

type wake =
  | Woken  (** {!wake} was called on the suspension. *)
  | Timed_out  (** The [timeout] given to {!suspend} elapsed first. *)

type handle
(** A suspended process, as stored by blocking primitives. *)

val create : ?seed:int64 -> unit -> t
(** A fresh engine with clock at {!Eden_util.Time.zero}.  [seed]
    (default 1) drives {!fork_rng}. *)

val now : t -> Eden_util.Time.t
val fork_rng : t -> Eden_util.Splitmix.t
(** An independent PRNG stream for one stochastic component. *)

val spawn :
  t -> ?name:string -> ?at:Eden_util.Time.t -> (unit -> unit) -> Pid.t
(** [spawn t f] registers a process whose body [f] starts at time [at]
    (default: now).  May be called from inside or outside processes.
    An exception escaping [f] (other than {!Killed}) aborts the run. *)

val kill : t -> Pid.t -> unit
(** Terminate a process.  A blocked or scheduled process receives
    {!Killed} at its suspension point; killing a finished or unknown
    process is a no-op.  A process may kill itself, in which case
    {!Killed} is raised immediately. *)

val alive : t -> Pid.t -> bool

val schedule : t -> ?after:Eden_util.Time.t -> (unit -> unit) -> unit
(** [schedule t f] runs the plain (non-blocking) callback [f] at
    [now + after] (default: now).  [f] must not perform blocking
    operations. *)

(** {2 Operations callable only inside a process} *)

val self : unit -> Pid.t
val delay : Eden_util.Time.t -> unit
(** Advance virtual time for this process. *)

val yield : unit -> unit
(** Reschedule behind other work at the current instant. *)

val suspend : ?timeout:Eden_util.Time.t -> (handle -> unit) -> wake
(** [suspend register] blocks the calling process.  [register] is called
    with the suspension handle before control returns to the engine;
    the primitive stores it and later calls {!wake}.  If [timeout] is
    given and elapses first, the process resumes with {!Timed_out}. *)

(** {2 Waking} *)

val wake : t -> handle -> unit
(** Schedule the suspended process to resume (with {!Woken}) at the
    current instant.  Waking a handle that has already been woken,
    timed out, or whose process was killed is a no-op. *)

val handle_pending : handle -> bool
(** Whether {!wake} on this handle would still resume a process; lets
    primitives skip stale queue entries. *)

val handle_pid : handle -> Pid.t

(** {2 Running} *)

val run : ?until:Eden_util.Time.t -> t -> unit
(** Process events in time order until the heap is empty or the clock
    would pass [until].  When the heap empties while non-daemon
    processes are still suspended with no timeout, those processes are
    resumed with {!Stalled_waiting} (a deadlock diagnostic).  Raises
    [Invalid_argument] if called from inside a process. *)

val every : t -> interval:Eden_util.Time.t -> (unit -> unit) -> unit
(** Install the engine's periodic sampler: from the current clock, [f]
    runs at every multiple of [interval] while events remain, as a
    plain non-blocking callback (like {!schedule} bodies).  The sampler
    is interleaved with heap events by time — at a shared instant the
    sampler fires first, so events landing exactly on a boundary count
    toward the next sample — but it is {e not} a heap event: it never
    extends the run past the last real event, never perturbs
    {!events_processed}, and a run with a sampler executes the exact
    same event schedule as one without (the observability plane rides
    along without disturbing what it observes).  One sampler per
    engine; a second call replaces the first.  Raises
    [Invalid_argument] on a zero interval. *)

val set_daemon : t -> Pid.t -> unit
(** Mark a process as expected to be blocked at end of run (server
    loops, coordinators).  Daemons are exempt from stall detection and
    stay suspended across successive {!run} calls, resuming when later
    work wakes them. *)

val events_processed : t -> int
val processes_spawned : t -> int
val live_processes : t -> int

val runnable_processes : t -> int
(** Live processes that are scheduled or running (not suspended): the
    instantaneous depth of the runnable queue. *)

val blocked_processes : t -> Pid.t list
(** Processes currently suspended on {!suspend} (diagnostics for
    deadlock reports), ordered by pid. *)
