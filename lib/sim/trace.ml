open Eden_util

type category = Sim | Net | Kern | Store | Move | Efs | App

type record = { time : Time.t; category : category; message : string }

let categories = [| Sim; Net; Kern; Store; Move; Efs; App |]

let category_index = function
  | Sim -> 0
  | Net -> 1
  | Kern -> 2
  | Store -> 3
  | Move -> 4
  | Efs -> 5
  | App -> 6

let category_name = function
  | Sim -> "sim"
  | Net -> "net"
  | Kern -> "kern"
  | Store -> "store"
  | Move -> "move"
  | Efs -> "efs"
  | App -> "app"

type subscription = int

type t = {
  ring : record Fifo.t;
  keep : int;
  counts : int array;
  mutable on : bool;
  mutable next_sub : subscription;
  mutable subscribers : (subscription * (record -> unit)) list;
}

let create ?(keep = 4096) () =
  if keep <= 0 then invalid_arg "Trace.create: keep must be positive";
  {
    ring = Fifo.create ();
    keep;
    counts = Array.make (Array.length categories) 0;
    on = false;
    next_sub = 0;
    subscribers = [];
  }

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let emit t time category message =
  if t.on then begin
    let r = { time; category; message } in
    let i = category_index category in
    t.counts.(i) <- t.counts.(i) + 1;
    if Fifo.length t.ring >= t.keep then ignore (Fifo.pop t.ring);
    Fifo.push_exn t.ring r;
    List.iter (fun (_, f) -> f r) t.subscribers
  end

let emitf t time category fmt =
  if t.on then
    Format.kasprintf (fun message -> emit t time category message) fmt
  else Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  t.subscribers <- t.subscribers @ [ (id, f) ];
  id

let unsubscribe t id =
  t.subscribers <- List.filter (fun (i, _) -> i <> id) t.subscribers
let recent t = Fifo.to_list t.ring
let count t category = t.counts.(category_index category)
let total t = Array.fold_left ( + ) 0 t.counts

let clear t =
  Fifo.clear t.ring;
  Array.fill t.counts 0 (Array.length t.counts) 0

let pp_record ppf r =
  Format.fprintf ppf "%a [%s] %s" Time.pp r.time (category_name r.category)
    r.message
