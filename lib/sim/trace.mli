(** Structured trace events.

    Components emit categorised trace records; tests subscribe to
    observe internal behaviour without widening public interfaces, and
    the CLI can dump the tail of a run.  Tracing is off by default and
    costs one branch when disabled. *)

type category =
  | Sim  (** engine-level: spawn, kill *)
  | Net  (** frames, collisions, backoff *)
  | Kern  (** invocation path, dispatch *)
  | Store  (** checkpoint and reincarnation *)
  | Move  (** mobility and replication *)
  | Efs  (** file system and transactions *)
  | App  (** examples and workloads *)

type record = {
  time : Eden_util.Time.t;
  category : category;
  message : string;
}

type t

val create : ?keep:int -> unit -> t
(** Retain the last [keep] records (default 4096). *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> Eden_util.Time.t -> category -> string -> unit
(** No-op while disabled. *)

val emitf :
  t ->
  Eden_util.Time.t ->
  category ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted emission; the format arguments are not evaluated while
    tracing is disabled. *)

type subscription
(** Handle for removing a subscriber again. *)

val subscribe : t -> (record -> unit) -> subscription
(** Called synchronously for every record while enabled.  Keep the
    returned handle and {!unsubscribe} when done — subscribers live as
    long as the trace otherwise. *)

val unsubscribe : t -> subscription -> unit
(** Idempotent. *)

val recent : t -> record list
(** Oldest first, up to [keep] records. *)

val count : t -> category -> int
(** Records emitted in this category (including evicted ones). *)

val total : t -> int
val clear : t -> unit
(** Drop retained records and counters (subscribers stay). *)

val category_name : category -> string
val pp_record : Format.formatter -> record -> unit
