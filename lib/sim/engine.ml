open Eden_util
open Effect
open Effect.Deep

module Pid = struct
  type t = { id : int; pname : string }

  let equal a b = Int.equal a.id b.id
  let compare a b = Int.compare a.id b.id
  let to_int p = p.id
  let name p = p.pname
  let pp ppf p = Format.fprintf ppf "%s#%d" p.pname p.id
end

exception Killed
exception Stalled_waiting

type wake = Woken | Timed_out

type event = { ev_time : Time.t; ev_run : unit -> unit }

(* The sampler is deliberately not a heap event: [run] drains the heap
   to completion, so a self-rescheduling sampler event would keep the
   simulation alive forever, and even a bounded one would perturb
   [n_events].  Instead the run loop interleaves sampler boundaries
   with heap events by time (boundary first on ties), touching neither
   the heap nor the event counter — a run with a sampler executes the
   exact same schedule as one without. *)
type sampler = {
  smp_interval : Time.t;
  mutable smp_next : Time.t;
  smp_fn : unit -> unit;
}

type t = {
  mutable clock : Time.t;
  heap : event Pqueue.t;
  procs : (int, proc) Hashtbl.t;
  pid_gen : Idgen.t;
  root_rng : Splitmix.t;
  mutable n_events : int;
  mutable n_spawned : int;
  mutable running : Pid.t option;
  mutable sampler : sampler option;
}

and proc = {
  p_pid : Pid.t;
  mutable p_state : proc_state;
  mutable p_killed : bool;
  mutable p_daemon : bool;
}

and proc_state =
  | Sched  (** a start/resume event for this process is in the heap *)
  | Run
  | Blocked of handle
  | Done

and handle = {
  h_proc : proc;
  mutable h_k : (wake, unit) continuation option;
}

type _ Effect.t +=
  | E_delay : Time.t -> unit Effect.t
  | E_suspend : Time.t option * (handle -> unit) -> wake Effect.t
  | E_self : Pid.t Effect.t

let create ?(seed = 1L) () =
  {
    clock = Time.zero;
    heap = Pqueue.create ~cmp:(fun a b -> Time.compare a.ev_time b.ev_time);
    procs = Hashtbl.create 64;
    pid_gen = Idgen.create ();
    root_rng = Splitmix.create seed;
    n_events = 0;
    n_spawned = 0;
    running = None;
    sampler = None;
  }

let now eng = eng.clock
let fork_rng eng = Splitmix.split eng.root_rng

let push_event eng time run =
  Pqueue.push eng.heap { ev_time = time; ev_run = run }

let schedule eng ?(after = Time.zero) f =
  push_event eng (Time.add eng.clock after) f

(* Resume a suspended/delayed process.  [go] performs the continue or
   discontinue; the process's installed handler takes over from there. *)
let reenter eng p go =
  eng.running <- Some p.p_pid;
  p.p_state <- Run;
  go ();
  (* The process has returned control: it either finished (state Done,
     set by its handler) or suspended again (state updated by the
     effect branch). *)
  ()

let resume_with eng p k v =
  reenter eng p (fun () ->
      if p.p_killed then discontinue k Killed else continue k v)

let resume_unit eng p (k : (unit, unit) continuation) =
  reenter eng p (fun () ->
      if p.p_killed then discontinue k Killed else continue k ())

let exec_body eng p body =
  eng.running <- Some p.p_pid;
  p.p_state <- Run;
  match_with body ()
    {
      retc =
        (fun () ->
          p.p_state <- Done;
          eng.running <- None);
      exnc =
        (fun e ->
          p.p_state <- Done;
          eng.running <- None;
          match e with Killed -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_delay d ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.p_state <- Sched;
                eng.running <- None;
                push_event eng (Time.add eng.clock d) (fun () ->
                    resume_unit eng p k))
          | E_suspend (timeout, register) ->
            Some
              (fun (k : (a, unit) continuation) ->
                let h = { h_proc = p; h_k = Some k } in
                p.p_state <- Blocked h;
                eng.running <- None;
                (match timeout with
                | None -> ()
                | Some d ->
                  push_event eng (Time.add eng.clock d) (fun () ->
                      match h.h_k with
                      | None -> ()
                      | Some k ->
                        h.h_k <- None;
                        resume_with eng p k Timed_out));
                register h)
          | E_self ->
            Some (fun (k : (a, unit) continuation) -> continue k p.p_pid)
          | _ -> None);
    }

let spawn eng ?(name = "proc") ?at body =
  let id = Idgen.next eng.pid_gen in
  let pid = { Pid.id; pname = name } in
  let p = { p_pid = pid; p_state = Sched; p_killed = false; p_daemon = false } in
  Hashtbl.replace eng.procs id p;
  eng.n_spawned <- eng.n_spawned + 1;
  let start = match at with None -> eng.clock | Some t -> Time.max t eng.clock in
  push_event eng start (fun () ->
      if p.p_killed then p.p_state <- Done else exec_body eng p body);
  pid

let find_proc eng pid = Hashtbl.find_opt eng.procs (Pid.to_int pid)

let kill eng pid =
  match find_proc eng pid with
  | None -> ()
  | Some p -> (
    match p.p_state with
    | Done -> ()
    | Run ->
      p.p_killed <- true;
      (match eng.running with
      | Some r when Pid.equal r pid -> raise Killed
      | Some _ | None ->
        (* Only one process runs at a time, so a Run process that is not
           [eng.running] cannot exist. *)
        assert false)
    | Sched ->
      (* The pending start/resume event will observe [p_killed]. *)
      p.p_killed <- true
    | Blocked h -> (
      p.p_killed <- true;
      match h.h_k with
      | None ->
        (* A wake or timeout event is already in flight; it will observe
           [p_killed] and discontinue. *)
        ()
      | Some k ->
        h.h_k <- None;
        p.p_state <- Sched;
        push_event eng eng.clock (fun () ->
            reenter eng p (fun () -> discontinue k Killed))))

let alive eng pid =
  match find_proc eng pid with
  | None -> false
  | Some p -> ( match p.p_state with Done -> false | Sched | Run | Blocked _ -> true)

let not_in_process what =
  invalid_arg (Printf.sprintf "Engine.%s: called outside a process" what)

let self () = try perform E_self with Effect.Unhandled _ -> not_in_process "self"

let delay d =
  try perform (E_delay d) with Effect.Unhandled _ -> not_in_process "delay"

let yield () = delay Time.zero

let suspend ?timeout register =
  try perform (E_suspend (timeout, register))
  with Effect.Unhandled _ -> not_in_process "suspend"

let wake eng h =
  match h.h_k with
  | None -> ()
  | Some k ->
    h.h_k <- None;
    let p = h.h_proc in
    p.p_state <- Sched;
    push_event eng eng.clock (fun () -> resume_with eng p k Woken)

let handle_pending h = h.h_k <> None
let handle_pid h = h.h_proc.p_pid

let set_daemon eng pid =
  match find_proc eng pid with
  | None -> invalid_arg "Engine.set_daemon: unknown process"
  | Some p -> p.p_daemon <- true

let blocked_procs eng =
  Hashtbl.fold
    (fun _ p acc ->
      match p.p_state with Blocked _ -> p :: acc | Sched | Run | Done -> acc)
    eng.procs []
  |> List.sort (fun a b -> Pid.compare a.p_pid b.p_pid)

(* When the heap empties, blocked daemons are discarded and any other
   blocked process is a deadlock: resume it with Stalled_waiting, which
   escapes through [run] unless the process catches it. *)
let handle_idle eng =
  let blocked = blocked_procs eng in
  (* Daemons (server loops, coordinators) are expected to be blocked at
     idle; they stay suspended and resume if a later run wakes them. *)
  let stuck = List.filter (fun p -> not p.p_daemon) blocked in
  match stuck with
  | [] -> false
  | p :: _ -> (
    match p.p_state with
    | Blocked h -> (
      match h.h_k with
      | None -> false
      | Some k ->
        h.h_k <- None;
        reenter eng p (fun () -> discontinue k Stalled_waiting);
        true)
    | Sched | Run | Done -> false)

let every eng ~interval f =
  if Time.is_zero interval then invalid_arg "Engine.every: zero interval";
  eng.sampler <-
    Some { smp_interval = interval; smp_next = Time.add eng.clock interval; smp_fn = f }

let run ?until eng =
  (match eng.running with
  | Some _ ->
    invalid_arg "Engine.run: called from inside a process"
  | None -> ());
  let within_limit t =
    match until with None -> true | Some l -> Time.(t <= l)
  in
  (* True when the sampler's next boundary is due at or before [t] (and
     within the run limit): the boundary fires first, so events at the
     boundary instant land in the next window. *)
  let sampler_due t =
    match eng.sampler with
    | Some smp
      when (let n = smp.smp_next in
            Time.(n <= t) && within_limit n) ->
      Some smp
    | Some _ | None -> None
  in
  let fire s =
    eng.clock <- s.smp_next;
    s.smp_next <- Time.add s.smp_next s.smp_interval;
    s.smp_fn ()
  in
  let rec loop () =
    match Pqueue.peek eng.heap with
    | None -> if handle_idle eng then loop ()
    | Some ev when not (within_limit ev.ev_time) -> (
      match until with
      | None -> assert false
      | Some l -> (
        (* Catch up boundaries inside the limit before parking at it. *)
        match sampler_due l with
        | Some s ->
          fire s;
          loop ()
        | None -> eng.clock <- l))
    | Some ev -> (
      match sampler_due ev.ev_time with
      | Some s ->
        fire s;
        loop ()
      | None ->
        let ev = Pqueue.pop_exn eng.heap in
        eng.clock <- ev.ev_time;
        eng.n_events <- eng.n_events + 1;
        ev.ev_run ();
        loop ())
  in
  loop ()

let events_processed eng = eng.n_events
let processes_spawned eng = eng.n_spawned

let blocked_processes eng =
  List.map (fun p -> p.p_pid) (blocked_procs eng)

let live_processes eng =
  Hashtbl.fold
    (fun _ p acc ->
      match p.p_state with Done -> acc | Sched | Run | Blocked _ -> acc + 1)
    eng.procs 0

let runnable_processes eng =
  Hashtbl.fold
    (fun _ p acc ->
      match p.p_state with Sched | Run -> acc + 1 | Blocked _ | Done -> acc)
    eng.procs 0
