open Eden_util
open Eden_sim

type profile = {
  avg_seek : Time.t;
  half_rotation : Time.t;
  transfer_bps : int;
  capacity_bytes : int;
}

let small_profile =
  {
    avg_seek = Time.ms 30;
    half_rotation = Time.ms 8;
    transfer_bps = 500_000;
    capacity_bytes = 10_000_000;
  }

let server_profile =
  {
    avg_seek = Time.ms 25;
    half_rotation = Time.ms 8;
    transfer_bps = 1_000_000;
    capacity_bytes = 300_000_000;
  }

type t = {
  prof : profile;
  dname : string;
  arm : Resource.t;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable rbytes : int;
  mutable wbytes : int;
}

let create eng ~profile ~name =
  if profile.transfer_bps <= 0 then
    invalid_arg "Disk.create: transfer rate must be positive";
  {
    prof = profile;
    dname = name;
    arm = Resource.create eng ~servers:1 ~name:(name ^ ".arm");
    n_reads = 0;
    n_writes = 0;
    rbytes = 0;
    wbytes = 0;
  }

let profile d = d.prof
let name d = d.dname

let access_time d ~bytes =
  if bytes < 0 then invalid_arg "Disk.access_time: negative size";
  let transfer = Time.ns (bytes * 1_000_000_000 / d.prof.transfer_bps) in
  Time.add (Time.add d.prof.avg_seek d.prof.half_rotation) transfer

let perform d ~bytes =
  let t = access_time d ~bytes in
  Resource.use d.arm t

let read d ~bytes =
  perform d ~bytes;
  d.n_reads <- d.n_reads + 1;
  d.rbytes <- d.rbytes + bytes

let write d ~bytes =
  perform d ~bytes;
  d.n_writes <- d.n_writes + 1;
  d.wbytes <- d.wbytes + bytes

let reads d = d.n_reads
let writes d = d.n_writes
let bytes_read d = d.rbytes
let bytes_written d = d.wbytes
let busy_time d = Resource.busy_time d.arm
let utilisation d ~over = Resource.utilisation d.arm ~over
let queue_length d = Resource.queue_length d.arm
