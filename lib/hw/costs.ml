open Eden_util

type t = {
  invoke_request_cpu : Time.t;
  invoke_dispatch_cpu : Time.t;
  process_create_cpu : Time.t;
  invoke_reply_cpu : Time.t;
  per_byte_copy : Time.t;
  locate_lookup_cpu : Time.t;
  checkpoint_fixed_cpu : Time.t;
  activation_fixed_cpu : Time.t;
  delta_scan_per_byte : Time.t;
}

let default =
  {
    invoke_request_cpu = Time.us 400;
    invoke_dispatch_cpu = Time.us 300;
    process_create_cpu = Time.us 900;
    invoke_reply_cpu = Time.us 250;
    per_byte_copy = Time.ns 800;
    locate_lookup_cpu = Time.us 50;
    checkpoint_fixed_cpu = Time.us 500;
    activation_fixed_cpu = Time.ms 2;
    (* Comparing a chunk against the last checkpointed version is a
       read-only sweep: much cheaper than marshalling the same bytes. *)
    delta_scan_per_byte = Time.ns 100;
  }

let scale c f =
  if not (Float.is_finite f) || f <= 0.0 then invalid_arg "Costs.scale";
  let s t = Time.mul_float t f in
  {
    invoke_request_cpu = s c.invoke_request_cpu;
    invoke_dispatch_cpu = s c.invoke_dispatch_cpu;
    process_create_cpu = s c.process_create_cpu;
    invoke_reply_cpu = s c.invoke_reply_cpu;
    per_byte_copy = s c.per_byte_copy;
    locate_lookup_cpu = s c.locate_lookup_cpu;
    checkpoint_fixed_cpu = s c.checkpoint_fixed_cpu;
    activation_fixed_cpu = s c.activation_fixed_cpu;
    delta_scan_per_byte = s c.delta_scan_per_byte;
  }

let copy_cost c ~bytes =
  if bytes < 0 then invalid_arg "Costs.copy_cost: negative size";
  Time.scale c.per_byte_copy bytes

let delta_scan_cost c ~bytes =
  if bytes < 0 then invalid_arg "Costs.delta_scan_cost: negative size";
  Time.scale c.delta_scan_per_byte bytes
