(** Calibrated per-primitive CPU service times.

    These constants stand in for the Intel iAPX 432 General Data
    Processor.  The paper flags invocation and address-space creation
    as the GDP's performance question marks, so those paths carry the
    largest costs.  Absolute values are synthetic-but-plausible for
    ~1981 hardware (a sub-1-MIPS processor); experiments depend on
    their ratios, not their absolute magnitudes. *)

type t = {
  invoke_request_cpu : Eden_util.Time.t;
      (** caller side: capability check, message construction *)
  invoke_dispatch_cpu : Eden_util.Time.t;
      (** coordinator: rights verification, class dispatch *)
  process_create_cpu : Eden_util.Time.t;
      (** creating an invocation process (432 address-space creation) *)
  invoke_reply_cpu : Eden_util.Time.t;
      (** packaging and consuming the reply *)
  per_byte_copy : Eden_util.Time.t;  (** marshalling cost per payload byte *)
  locate_lookup_cpu : Eden_util.Time.t;
      (** one location-table or hint-cache probe *)
  checkpoint_fixed_cpu : Eden_util.Time.t;
      (** preparing a representation snapshot, excluding disk I/O *)
  activation_fixed_cpu : Eden_util.Time.t;
      (** coordinator creation + reincarnation-handler entry *)
  delta_scan_per_byte : Eden_util.Time.t;
      (** comparing the representation against the last checkpointed
          version to find dirty chunks (a read-only sweep, cheaper
          than copying) *)
}

val default : t

val scale : t -> float -> t
(** [scale c f] multiplies every service time by [f] (a faster or
    slower processor generation).  Requires [f > 0]. *)

val copy_cost : t -> bytes:int -> Eden_util.Time.t
(** Marshalling cost for a payload of the given size. *)

val delta_scan_cost : t -> bytes:int -> Eden_util.Time.t
(** CPU cost of diffing a representation of the given size against its
    last checkpointed version. *)
