(** Mass-storage model.

    A single-arm disk with average-seek + half-rotation positioning and
    size-proportional transfer.  Requests queue FIFO on the arm, so
    concurrent checkpoint traffic serialises as it did on the era's
    Winchester drives. *)

type profile = {
  avg_seek : Eden_util.Time.t;
  half_rotation : Eden_util.Time.t;
  transfer_bps : int;  (** sustained transfer, bytes per second *)
  capacity_bytes : int;
}

val small_profile : profile
(** The ~10 MB local disk of a default node machine. *)

val server_profile : profile
(** The 300 MB file-server disk the paper plans for. *)

type t

val create : Eden_sim.Engine.t -> profile:profile -> name:string -> t
val profile : t -> profile
val name : t -> string

val access_time : t -> bytes:int -> Eden_util.Time.t
(** Positioning plus transfer time for one request, ignoring queueing. *)

val read : t -> bytes:int -> unit
(** Perform a read of [bytes], blocking through the arm queue.  Must be
    called from a process.  Raises [Invalid_argument] on negative
    size. *)

val write : t -> bytes:int -> unit

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val busy_time : t -> Eden_util.Time.t

val utilisation : t -> over:Eden_util.Time.t -> float
(** Fraction of [over] the arm spent servicing transfers. *)

val queue_length : t -> int
