(* Model-based property tests: Eden objects compared step-by-step
   against reference implementations from the standard library.  A
   divergence at any step fails the property, so these catch subtle
   ordering or aliasing bugs in the type implementations that
   example-based tests miss. *)

open Eden_kernel
open Eden_typesys

let drive cl body =
  let out = ref None in
  let _ = Cluster.in_process cl (fun () -> out := Some (body ())) in
  Cluster.run cl;
  match !out with
  | Some r -> r
  | None -> QCheck.Test.fail_report "driver did not finish"

(* ------------------------------------------------------------------ *)
(* EFS directories vs Map *)

module SM = Map.Make (String)

let prop_directory_matches_map =
  QCheck.Test.make ~name:"efs directory behaves like a string map" ~count:25
    QCheck.(pair (int_range 0 1000) (list (pair (int_range 0 5) (int_range 0 7))))
    (fun (seed, script) ->
      let cl = Cluster.default ~seed:(Int64.of_int (seed + 3)) ~n_nodes:2 () in
      Eden_efs.Schema.register cl;
      drive cl (fun () ->
          let dir =
            Result.get_ok (Eden_efs.Client.make_root cl ~node:0)
          in
          (* A pool of capabilities to bind (plain files). *)
          let payload =
            Result.get_ok
              (Cluster.create_object cl ~node:0 ~type_name:"efs_file"
                 Eden_efs.Schema.empty_file_repr)
          in
          let model = ref SM.empty in
          let names = [| "a"; "b"; "c"; "d"; "e"; "f" |] in
          let ok = ref true in
          let step (op, name_idx) =
            let name = names.(name_idx mod Array.length names) in
            match op mod 4 with
            | 0 -> (
              (* bind: must succeed iff absent in the model *)
              let expected = not (SM.mem name !model) in
              match
                Cluster.invoke cl ~from:0 dir ~op:"bind"
                  [ Value.Str name; Value.Cap payload ]
              with
              | Ok _ ->
                if expected then model := SM.add name () !model
                else ok := false
              | Error (Error.User_error _) -> if expected then ok := false
              | Error _ -> ok := false)
            | 1 -> (
              (* unbind: succeeds iff present *)
              let expected = SM.mem name !model in
              match
                Cluster.invoke cl ~from:0 dir ~op:"unbind" [ Value.Str name ]
              with
              | Ok _ ->
                if expected then model := SM.remove name !model
                else ok := false
              | Error (Error.User_error _) -> if expected then ok := false
              | Error _ -> ok := false)
            | 2 -> (
              (* lookup mirrors membership *)
              match
                Cluster.invoke cl ~from:0 dir ~op:"lookup" [ Value.Str name ]
              with
              | Ok [ Value.Cap _ ] -> if not (SM.mem name !model) then ok := false
              | Error (Error.User_error _) ->
                if SM.mem name !model then ok := false
              | Ok _ | Error _ -> ok := false)
            | _ -> (
              (* listing equals the model's domain *)
              match Cluster.invoke cl ~from:0 dir ~op:"list" [] with
              | Ok [ Value.List vs ] ->
                let listed =
                  List.filter_map
                    (fun v -> match v with Value.Str s -> Some s | _ -> None)
                    vs
                  |> List.sort String.compare
                in
                let expected = SM.bindings !model |> List.map fst in
                if listed <> expected then ok := false
              | Ok _ | Error _ -> ok := false)
          in
          List.iter step script;
          !ok))

(* ------------------------------------------------------------------ *)
(* KV template vs Hashtbl *)

let prop_kv_matches_hashtbl =
  QCheck.Test.make ~name:"kv template behaves like a hashtable" ~count:25
    QCheck.(
      pair (int_range 0 1000)
        (list (triple (int_range 0 5) (int_range 0 4) small_int)))
    (fun (seed, script) ->
      let cl = Cluster.default ~seed:(Int64.of_int (seed + 5)) ~n_nodes:2 () in
      Cluster.register_type cl (Templates.kv_type ~name:"mkv");
      drive cl (fun () ->
          let kv =
            Result.get_ok
              (Cluster.create_object cl ~node:0 ~type_name:"mkv"
                 (Value.List []))
          in
          let model : (string, int) Hashtbl.t = Hashtbl.create 8 in
          let keys = [| "k0"; "k1"; "k2"; "k3"; "k4" |] in
          let ok = ref true in
          let step (op, key_idx, v) =
            let k = keys.(key_idx mod Array.length keys) in
            match op mod 4 with
            | 0 ->
              (match
                 Cluster.invoke cl ~from:0 kv ~op:"put"
                   [ Value.Str k; Value.Int v ]
               with
              | Ok _ -> Hashtbl.replace model k v
              | Error _ -> ok := false)
            | 1 -> (
              match Cluster.invoke cl ~from:0 kv ~op:"get" [ Value.Str k ] with
              | Ok [ Value.Int got ] -> (
                match Hashtbl.find_opt model k with
                | Some expected -> if got <> expected then ok := false
                | None -> ok := false)
              | Error (Error.User_error _) ->
                if Hashtbl.mem model k then ok := false
              | Ok _ | Error _ -> ok := false)
            | 2 ->
              (match
                 Cluster.invoke cl ~from:0 kv ~op:"delete" [ Value.Str k ]
               with
              | Ok _ -> Hashtbl.remove model k
              | Error _ -> ok := false)
            | _ -> (
              match Cluster.invoke cl ~from:0 kv ~op:"size" [] with
              | Ok [ Value.Int n ] ->
                if n <> Hashtbl.length model then ok := false
              | Ok _ | Error _ -> ok := false)
          in
          List.iter step script;
          !ok))

(* ------------------------------------------------------------------ *)
(* Queue template vs Stdlib.Queue *)

let prop_queue_matches_queue =
  QCheck.Test.make ~name:"queue template behaves like Queue" ~count:25
    QCheck.(pair (int_range 0 1000) (list (pair bool small_int)))
    (fun (seed, script) ->
      let cl = Cluster.default ~seed:(Int64.of_int (seed + 9)) ~n_nodes:2 () in
      Cluster.register_type cl (Templates.queue_type ~name:"mq");
      drive cl (fun () ->
          let q =
            Result.get_ok
              (Cluster.create_object cl ~node:0 ~type_name:"mq"
                 (Value.List []))
          in
          let model : int Queue.t = Queue.create () in
          let ok = ref true in
          let step (is_push, v) =
            if is_push then (
              match
                Cluster.invoke cl ~from:0 q ~op:"enqueue" [ Value.Int v ]
              with
              | Ok _ -> Queue.push v model
              | Error _ -> ok := false)
            else
              match Cluster.invoke cl ~from:0 q ~op:"dequeue" [] with
              | Ok [ Value.Int got ] -> (
                match Queue.take_opt model with
                | Some expected -> if got <> expected then ok := false
                | None -> ok := false)
              | Error (Error.User_error _) ->
                if not (Queue.is_empty model) then ok := false
              | Ok _ | Error _ -> ok := false
          in
          List.iter step script;
          (* Final length agrees too. *)
          (match Cluster.invoke cl ~from:0 q ~op:"length" [] with
          | Ok [ Value.Int n ] -> if n <> Queue.length model then ok := false
          | Ok _ | Error _ -> ok := false);
          !ok))

(* ------------------------------------------------------------------ *)
(* Value sizes are consistent and positive *)

let rec value_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        return Value.Unit;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_int;
        map (fun s -> Value.Str s) (string_size (int_range 0 20));
        map (fun n -> Value.Blob n) (int_range 0 1000);
      ]
  else
    frequency
      [
        (2, value_gen 0);
        ( 1,
          map
            (fun vs -> Value.List vs)
            (list_size (int_range 0 4) (value_gen (depth - 1))) );
        ( 1,
          map2
            (fun a b -> Value.Pair (a, b))
            (value_gen (depth - 1))
            (value_gen (depth - 1)) );
      ]

let prop_value_size_superadditive =
  QCheck.Test.make ~name:"container size covers parts" ~count:200
    (QCheck.make (value_gen 3))
    (fun v ->
      let s = Value.size_bytes v in
      s >= 0
      &&
      match v with
      | Value.List vs ->
        s >= List.fold_left (fun a x -> a + Value.size_bytes x) 0 vs
      | Value.Pair (a, b) -> s >= Value.size_bytes a + Value.size_bytes b
      | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Cap _
      | Value.Blob _ ->
        true)

let () =

  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "eden_models"
    [
      ( "model-based",
        [
          qt prop_directory_matches_map;
          qt prop_kv_matches_hashtbl;
          qt prop_queue_matches_queue;
          qt prop_value_size_superadditive;
        ] );
    ]
