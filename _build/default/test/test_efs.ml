(* Tests for the Eden File System: naming, immutable versions,
   transactions under both concurrency-control modes, replication and
   durability. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Eden_efs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Error.to_string e)

(* Run [body] in a driver process on a fresh EFS-enabled cluster. *)
let with_efs ?seed ?(n = 3) body =
  let cl = Cluster.default ?seed ~n_nodes:n () in
  Schema.register cl;
  let result = ref None in
  let _ = Cluster.in_process cl (fun () -> result := Some (body cl)) in
  Cluster.run cl;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "driver process did not complete"

let str s = Value.Str s

(* ------------------------------------------------------------------ *)
(* Naming and files *)

let test_mkdir_and_resolve () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let sub =
        ok_or_fail "mkdir" (Client.mkdir cl ~from:0 ~dir:root ~name:"home" ())
      in
      let _ =
        ok_or_fail "mkdir2"
          (Client.mkdir cl ~from:0 ~dir:sub ~name:"alice" ())
      in
      let resolved =
        ok_or_fail "resolve" (Client.resolve cl ~from:0 ~root "home/alice")
      in
      check_bool "resolves to a directory" true
        (Cluster.is_active cl resolved);
      let names = ok_or_fail "list" (Client.list_dir cl ~from:0 root) in
      Alcotest.(check (list string)) "root listing" [ "home" ] names;
      match Client.resolve cl ~from:0 ~root "home/bob" with
      | Error (Error.User_error _) -> ()
      | Ok _ -> Alcotest.fail "resolved a missing path"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_create_and_read_file () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let file =
        ok_or_fail "create"
          (Client.create_file cl ~from:0 ~dir:root ~name:"notes"
             ~content:(str "hello eden") ())
      in
      check_bool "read back" true
        (Client.read_file cl ~from:0 file = Ok (str "hello eden"));
      check_int "one version" 1
        (ok_or_fail "count" (Client.version_count cl ~from:0 file));
      (* Readable from any node: location independence. *)
      check_bool "remote read" true
        (Client.read_file cl ~from:2 file = Ok (str "hello eden")))

let test_empty_file_has_no_current () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let file =
        ok_or_fail "create"
          (Client.create_file cl ~from:0 ~dir:root ~name:"empty" ())
      in
      match Client.read_file cl ~from:0 file with
      | Error (Error.User_error _) -> ()
      | Ok _ -> Alcotest.fail "read an empty file"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_duplicate_bind_rejected () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let _ =
        ok_or_fail "first"
          (Client.create_file cl ~from:0 ~dir:root ~name:"x" ())
      in
      match Client.create_file cl ~from:0 ~dir:root ~name:"x" () with
      | Error (Error.User_error _) -> ()
      | Ok _ -> Alcotest.fail "duplicate bind accepted"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Versions *)

let write_once cl ~from ~mode file content =
  let t = Txn.begin_txn cl ~from ~mode in
  (match Txn.write t file content with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" (Error.to_string e));
  match Txn.commit t with
  | Txn.Committed -> ()
  | Txn.Conflict -> Alcotest.fail "unexpected conflict"
  | Txn.Failed e -> Alcotest.failf "commit: %s" (Error.to_string e)

let test_versions_accumulate () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let file =
        ok_or_fail "create"
          (Client.create_file cl ~from:0 ~dir:root ~name:"f"
             ~content:(str "v0") ())
      in
      write_once cl ~from:0 ~mode:Txn.Locking file (str "v1");
      write_once cl ~from:0 ~mode:Txn.Optimistic file (str "v2");
      check_int "three versions" 3
        (ok_or_fail "count" (Client.version_count cl ~from:0 file));
      check_bool "current is v2" true
        (Client.read_file cl ~from:0 file = Ok (str "v2"));
      (* Old versions remain readable: immutability. *)
      check_bool "v0 intact" true
        (Client.read_version_at cl ~from:0 file 0 = Ok (str "v0"));
      check_bool "v1 intact" true
        (Client.read_version_at cl ~from:0 file 1 = Ok (str "v1")))

(* ------------------------------------------------------------------ *)
(* Transactions: locking mode *)

let test_locking_serialises_increments () =
  (* N concurrent read-modify-write transactions must not lose any
     update when using two-phase locking. *)
  let n_txns = 6 in
  let cl = Cluster.default ~n_nodes:3 () in
  Schema.register cl;
  let file_cap = ref None in
  let done_count = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
        let f =
          ok_or_fail "create"
            (Client.create_file cl ~from:0 ~dir:root ~name:"ctr"
               ~content:(Value.Int 0) ())
        in
        file_cap := Some f;
        for i = 0 to n_txns - 1 do
          let from = i mod 3 in
          ignore
            (Cluster.in_process cl ~name:(Printf.sprintf "txn%d" i)
               (fun () ->
                 let t = Txn.begin_txn cl ~from ~mode:Txn.Locking in
                 (match Txn.read_for_update t f with
                 | Ok (Value.Int v) -> (
                   ignore (Txn.write t f (Value.Int (v + 1)));
                   match Txn.commit t with
                   | Txn.Committed -> incr done_count
                   | Txn.Conflict | Txn.Failed _ -> Txn.abort t)
                 | Ok _ | Error _ -> Txn.abort t)))
        done)
  in
  (try Cluster.run cl
   with Engine.Stalled_waiting ->
     let names =
       List.map Engine.Pid.name
         (Engine.blocked_processes (Cluster.engine cl))
     in
     Alcotest.failf "deadlock; blocked: %s" (String.concat ", " names));
  let f = Option.get !file_cap in
  let final = ref None in
  let _ =
    Cluster.in_process cl (fun () -> final := Some (Client.read_file cl ~from:0 f))
  in
  Cluster.run cl;
  check_int "all committed" n_txns !done_count;
  check_bool "no lost updates" true (!final = Some (Ok (Value.Int n_txns)))

let test_lock_timeout_breaks_deadlock () =
  (* Transaction A locks f1 then f2; B locks f2 then f1.  One of them
     must time out and abort, the other commits. *)
  let cl = Cluster.default ~n_nodes:2 () in
  Schema.register cl;
  Txn.lock_timeout_ms := 200;
  let outcomes = ref [] in
  let _ =
    Cluster.in_process cl (fun () ->
        let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
        let f1 =
          ok_or_fail "f1"
            (Client.create_file cl ~from:0 ~dir:root ~name:"f1"
               ~content:(Value.Int 0) ())
        in
        let f2 =
          ok_or_fail "f2"
            (Client.create_file cl ~from:0 ~dir:root ~name:"f2"
               ~content:(Value.Int 0) ())
        in
        let run_txn first second tag think =
          let t = Txn.begin_txn cl ~from:0 ~mode:Txn.Locking in
          match Txn.write t first (Value.Int 1) with
          | Error _ ->
            Txn.abort t;
            outcomes := (tag, "first-lock-failed") :: !outcomes
          | Ok () -> (
            (* Give the other transaction time to take its first lock;
               asymmetric think times keep the two lock timeouts from
               expiring at the same instant (both would abort). *)
            Engine.delay think;
            match Txn.write t second (Value.Int 2) with
            | Error _ ->
              Txn.abort t;
              outcomes := (tag, "aborted") :: !outcomes
            | Ok () -> (
              match Txn.commit t with
              | Txn.Committed -> outcomes := (tag, "committed") :: !outcomes
              | Txn.Conflict -> outcomes := (tag, "conflict") :: !outcomes
              | Txn.Failed _ -> outcomes := (tag, "failed") :: !outcomes))
        in
        ignore
          (Cluster.in_process cl (fun () -> run_txn f1 f2 "a" (Time.ms 10)));
        ignore
          (Cluster.in_process cl (fun () -> run_txn f2 f1 "b" (Time.ms 40))))
  in
  Cluster.run cl;
  Txn.lock_timeout_ms := 2_000;
  let tally what = List.length (List.filter (fun (_, o) -> o = what) !outcomes) in
  check_int "two outcomes" 2 (List.length !outcomes);
  check_int "exactly one aborted" 1 (tally "aborted");
  check_int "exactly one committed" 1 (tally "committed")

(* ------------------------------------------------------------------ *)
(* Transactions: optimistic mode *)

let test_optimistic_conflict_detected () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let f =
        ok_or_fail "create"
          (Client.create_file cl ~from:0 ~dir:root ~name:"f"
             ~content:(Value.Int 10) ())
      in
      let t1 = Txn.begin_txn cl ~from:0 ~mode:Txn.Optimistic in
      let t2 = Txn.begin_txn cl ~from:1 ~mode:Txn.Optimistic in
      (match (Txn.read t1 f, Txn.read t2 f) with
      | Ok (Value.Int 10), Ok (Value.Int 10) -> ()
      | _ -> Alcotest.fail "reads failed");
      ignore (Txn.write t1 f (Value.Int 11));
      ignore (Txn.write t2 f (Value.Int 12));
      (* First committer wins. *)
      (match Txn.commit t1 with
      | Txn.Committed -> ()
      | _ -> Alcotest.fail "t1 should commit");
      (match Txn.commit t2 with
      | Txn.Conflict -> ()
      | Txn.Committed -> Alcotest.fail "t2 must conflict"
      | Txn.Failed e -> Alcotest.failf "t2 failed oddly: %s" (Error.to_string e));
      check_bool "t1's write visible" true
        (Client.read_file cl ~from:0 f = Ok (Value.Int 11)))

let test_optimistic_read_validation () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let a =
        ok_or_fail "a"
          (Client.create_file cl ~from:0 ~dir:root ~name:"a"
             ~content:(Value.Int 1) ())
      in
      let b =
        ok_or_fail "b"
          (Client.create_file cl ~from:0 ~dir:root ~name:"b"
             ~content:(Value.Int 2) ())
      in
      (* T reads a, writes b; meanwhile a changes: T must conflict. *)
      let t = Txn.begin_txn cl ~from:0 ~mode:Txn.Optimistic in
      (match Txn.read t a with
      | Ok (Value.Int 1) -> ()
      | _ -> Alcotest.fail "read failed");
      write_once cl ~from:1 ~mode:Txn.Locking a (Value.Int 99);
      ignore (Txn.write t b (Value.Int 3));
      match Txn.commit t with
      | Txn.Conflict -> ()
      | Txn.Committed -> Alcotest.fail "stale read committed"
      | Txn.Failed e -> Alcotest.failf "failed oddly: %s" (Error.to_string e))

let test_optimistic_retry_converges () =
  let cl = Cluster.default ~n_nodes:3 () in
  Schema.register cl;
  let n_txns = 5 in
  let committed = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
        let f =
          ok_or_fail "create"
            (Client.create_file cl ~from:0 ~dir:root ~name:"ctr"
               ~content:(Value.Int 0) ())
        in
        for i = 0 to n_txns - 1 do
          ignore
            (Cluster.in_process cl (fun () ->
                 let rec attempt tries =
                   if tries > 20 then ()
                   else begin
                     let t =
                       Txn.begin_txn cl ~from:(i mod 3) ~mode:Txn.Optimistic
                     in
                     match Txn.read t f with
                     | Ok (Value.Int v) -> (
                       ignore (Txn.write t f (Value.Int (v + 1)));
                       match Txn.commit t with
                       | Txn.Committed -> incr committed
                       | Txn.Conflict -> attempt (tries + 1)
                       | Txn.Failed _ -> attempt (tries + 1))
                     | Ok _ | Error _ -> attempt (tries + 1)
                   end
                 in
                 attempt 0))
        done)
  in
  Cluster.run cl;
  check_int "all eventually committed" n_txns !committed

(* ------------------------------------------------------------------ *)
(* Transactions: snapshot mode *)

let test_snapshot_reads_never_abort () =
  (* A transaction that read a file which subsequently changed still
     commits its (disjoint) write under Snapshot; Optimistic aborts the
     same history. *)
  let run mode =
    with_efs (fun cl ->
        let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
        let a =
          ok_or_fail "a"
            (Client.create_file cl ~from:0 ~dir:root ~name:"a"
               ~content:(Value.Int 1) ())
        in
        let b =
          ok_or_fail "b"
            (Client.create_file cl ~from:0 ~dir:root ~name:"b"
               ~content:(Value.Int 2) ())
        in
        let t = Txn.begin_txn cl ~from:0 ~mode in
        (match Txn.read t a with
        | Ok (Value.Int 1) -> ()
        | _ -> Alcotest.fail "read failed");
        (* Someone else updates [a] before we commit. *)
        write_once cl ~from:1 ~mode:Txn.Locking a (Value.Int 99);
        ignore (Txn.write t b (Value.Int 3));
        Txn.commit t)
  in
  (match run Txn.Snapshot with
  | Txn.Committed -> ()
  | _ -> Alcotest.fail "snapshot should commit despite the stale read");
  match run Txn.Optimistic with
  | Txn.Conflict -> ()
  | _ -> Alcotest.fail "optimistic must abort on the stale read"

let test_snapshot_repeatable_reads () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let f =
        ok_or_fail "f"
          (Client.create_file cl ~from:0 ~dir:root ~name:"f"
             ~content:(str "original") ())
      in
      let t = Txn.begin_txn cl ~from:0 ~mode:Txn.Snapshot in
      check_bool "first read" true (Txn.read t f = Ok (str "original"));
      write_once cl ~from:1 ~mode:Txn.Locking f (str "changed");
      (* The transaction keeps seeing its pinned version. *)
      check_bool "repeatable" true (Txn.read t f = Ok (str "original"));
      Txn.abort t;
      (* Outside the transaction the new version is visible. *)
      check_bool "new version outside" true
        (Client.read_file cl ~from:0 f = Ok (str "changed")))

let test_snapshot_first_committer_wins () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let f =
        ok_or_fail "f"
          (Client.create_file cl ~from:0 ~dir:root ~name:"f"
             ~content:(Value.Int 0) ())
      in
      let t1 = Txn.begin_txn cl ~from:0 ~mode:Txn.Snapshot in
      let t2 = Txn.begin_txn cl ~from:1 ~mode:Txn.Snapshot in
      ignore (Txn.read t1 f);
      ignore (Txn.read t2 f);
      ignore (Txn.write t1 f (Value.Int 10));
      ignore (Txn.write t2 f (Value.Int 20));
      (match Txn.commit t1 with
      | Txn.Committed -> ()
      | _ -> Alcotest.fail "t1 commits");
      match Txn.commit t2 with
      | Txn.Conflict -> ()
      | _ -> Alcotest.fail "t2 must lose the write-write race")

let test_snapshot_admits_write_skew () =
  (* The textbook anomaly: both transactions read {a,b}, each writes
     the other file; snapshot isolation commits both. *)
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let a =
        ok_or_fail "a"
          (Client.create_file cl ~from:0 ~dir:root ~name:"a"
             ~content:(Value.Int 1) ())
      in
      let b =
        ok_or_fail "b"
          (Client.create_file cl ~from:0 ~dir:root ~name:"b"
             ~content:(Value.Int 1) ())
      in
      let t1 = Txn.begin_txn cl ~from:0 ~mode:Txn.Snapshot in
      let t2 = Txn.begin_txn cl ~from:1 ~mode:Txn.Snapshot in
      ignore (Txn.read t1 a);
      ignore (Txn.read t1 b);
      ignore (Txn.read t2 a);
      ignore (Txn.read t2 b);
      ignore (Txn.write t1 a (Value.Int 0));
      ignore (Txn.write t2 b (Value.Int 0));
      let r1 = Txn.commit t1 in
      let r2 = Txn.commit t2 in
      check_bool "both commit (write skew)" true
        (r1 = Txn.Committed && r2 = Txn.Committed);
      (* The same history under Optimistic: the second commit aborts
         because its read of the other file went stale. *)
      let t3 = Txn.begin_txn cl ~from:0 ~mode:Txn.Optimistic in
      let t4 = Txn.begin_txn cl ~from:1 ~mode:Txn.Optimistic in
      ignore (Txn.read t3 a);
      ignore (Txn.read t3 b);
      ignore (Txn.read t4 a);
      ignore (Txn.read t4 b);
      ignore (Txn.write t3 a (Value.Int 1));
      ignore (Txn.write t4 b (Value.Int 1));
      let r3 = Txn.commit t3 in
      let r4 = Txn.commit t4 in
      check_bool "optimistic forbids the skew" true
        (r3 = Txn.Committed && r4 = Txn.Conflict))

(* ------------------------------------------------------------------ *)
(* Multi-file atomicity *)

let test_two_file_commit_atomic () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let a =
        ok_or_fail "a"
          (Client.create_file cl ~from:0 ~dir:root ~name:"a"
             ~content:(str "a0") ())
      in
      let b =
        ok_or_fail "b"
          (Client.create_file cl ~from:1 ~dir:root ~name:"b" ~node:1
             ~content:(str "b0") ())
      in
      let t = Txn.begin_txn cl ~from:2 ~mode:Txn.Locking in
      ignore (Txn.write t a (str "a1"));
      ignore (Txn.write t b (str "b1"));
      (match Txn.commit t with
      | Txn.Committed -> ()
      | _ -> Alcotest.fail "commit failed");
      check_bool "a updated" true (Client.read_file cl ~from:2 a = Ok (str "a1"));
      check_bool "b updated" true (Client.read_file cl ~from:2 b = Ok (str "b1")))

let test_abort_discards () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let f =
        ok_or_fail "f"
          (Client.create_file cl ~from:0 ~dir:root ~name:"f"
             ~content:(str "keep") ())
      in
      let t = Txn.begin_txn cl ~from:0 ~mode:Txn.Locking in
      ignore (Txn.write t f (str "discard"));
      check_bool "txn sees its own write" true
        (Txn.read t f = Ok (str "discard"));
      Txn.abort t;
      check_bool "abort discards" true
        (Client.read_file cl ~from:0 f = Ok (str "keep"));
      (* Locks released: another locking transaction proceeds. *)
      write_once cl ~from:1 ~mode:Txn.Locking f (str "after");
      check_bool "lock released" true
        (Client.read_file cl ~from:0 f = Ok (str "after")))

(* ------------------------------------------------------------------ *)
(* Replication and durability *)

let test_commit_with_replicas () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let f =
        ok_or_fail "f"
          (Client.create_file cl ~from:0 ~dir:root ~name:"shared"
             ~content:(str "v0") ())
      in
      let t = Txn.begin_txn cl ~from:0 ~mode:Txn.Locking in
      ignore (Txn.write t f (str "v1"));
      (match Txn.commit ~replicate_to:[ 1; 2 ] t with
      | Txn.Committed -> ()
      | _ -> Alcotest.fail "commit failed");
      (* The new version object is replicated at nodes 1 and 2. *)
      let vno_vcap =
        match Cluster.invoke cl ~from:0 f ~op:"current" [] with
        | Ok [ Value.Int _; Value.Cap vcap ] -> vcap
        | _ -> Alcotest.fail "no current version"
      in
      Alcotest.(check (list int))
        "replica sites" [ 1; 2 ]
        (List.sort Int.compare (Cluster.replica_sites cl vno_vcap));
      (* Reading the version body from node 2 uses the local replica. *)
      let before = Cluster.stats_remote_invocations cl in
      (match Cluster.invoke cl ~from:2 vno_vcap ~op:"read" [] with
      | Ok [ Value.Str "v1" ] -> ()
      | _ -> Alcotest.fail "replica read failed");
      check_int "served locally" before (Cluster.stats_remote_invocations cl))

let test_durable_commit_survives_crash () =
  let cl = Cluster.default ~n_nodes:3 () in
  Schema.register cl;
  let caps = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
        let f =
          ok_or_fail "f"
            (Client.create_file cl ~from:0 ~dir:root ~name:"f"
               ~content:(str "v0") ())
        in
        let t = Txn.begin_txn cl ~from:0 ~mode:Txn.Locking in
        ignore (Txn.write t f (str "precious"));
        (match Txn.commit ~durable:true t with
        | Txn.Committed -> ()
        | _ -> Alcotest.fail "commit failed");
        (* Version objects must be durable too for recovery to return
           contents; checkpoint the current version object. *)
        (match Cluster.invoke cl ~from:0 f ~op:"current" [] with
        | Ok [ Value.Int _; Value.Cap vcap ] ->
          ignore (ok_or_fail "ckpt version" (Cluster.checkpoint_of cl vcap))
        | _ -> Alcotest.fail "no current");
        caps := Some f)
  in
  Cluster.run cl;
  let f = Option.get !caps in
  Cluster.crash_node cl 0;
  Cluster.restart_node cl 0;
  let readback = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        readback := Some (Client.read_file cl ~from:1 f))
  in
  Cluster.run cl;
  check_bool "file recovered from disk" true
    (!readback = Some (Ok (str "precious")))

(* ------------------------------------------------------------------ *)
(* The file type's readers/writer lock, exercised directly through its
   operations. *)

let lock_file cl =
  let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
  ok_or_fail "create"
    (Client.create_file cl ~from:0 ~dir:root ~name:"locked"
       ~content:(Value.Int 0) ())

let lock_op cl ~from file op ms =
  match Cluster.invoke cl ~from file ~op [ Value.Int ms ] with
  | Ok [ Value.Bool b ] -> b
  | Ok _ | Error _ -> Alcotest.failf "%s failed" op

let unlock_op cl ~from file op =
  ignore (ok_or_fail op (Cluster.invoke cl ~from file ~op []))

let test_rwlock_readers_coexist () =
  with_efs (fun cl ->
      let f = lock_file cl in
      check_bool "r1" true (lock_op cl ~from:0 f "lock_shared" 100);
      check_bool "r2" true (lock_op cl ~from:1 f "lock_shared" 100);
      check_bool "r3" true (lock_op cl ~from:2 f "lock_shared" 100);
      (* A writer cannot enter while readers hold the lock. *)
      check_bool "writer excluded" false
        (lock_op cl ~from:0 f "lock_exclusive" 50);
      unlock_op cl ~from:0 f "unlock_shared";
      unlock_op cl ~from:1 f "unlock_shared";
      check_bool "writer still excluded" false
        (lock_op cl ~from:0 f "lock_exclusive" 50);
      unlock_op cl ~from:2 f "unlock_shared";
      (* Last reader gone: the writer gets in. *)
      check_bool "writer enters" true
        (lock_op cl ~from:0 f "lock_exclusive" 50);
      unlock_op cl ~from:0 f "unlock_exclusive")

let test_rwlock_writer_excludes_readers () =
  with_efs (fun cl ->
      let f = lock_file cl in
      check_bool "writer" true (lock_op cl ~from:0 f "lock_exclusive" 100);
      check_bool "reader excluded" false (lock_op cl ~from:1 f "lock_shared" 50);
      unlock_op cl ~from:0 f "unlock_exclusive";
      check_bool "reader enters after release" true
        (lock_op cl ~from:1 f "lock_shared" 50);
      unlock_op cl ~from:1 f "unlock_shared")

let test_rwlock_blocked_writer_wakes () =
  (* A writer waiting within its budget is granted the lock the moment
     the last reader leaves, not at timeout. *)
  with_efs (fun cl ->
      let f = lock_file cl in
      check_bool "reader in" true (lock_op cl ~from:0 f "lock_shared" 100);
      let eng = Cluster.engine cl in
      let writer_done = ref None in
      ignore
        (Cluster.in_process cl (fun () ->
             let granted = lock_op cl ~from:1 f "lock_exclusive" 500 in
             writer_done := Some (granted, Engine.now eng)));
      Engine.delay (Time.ms 50);
      let released_at = Engine.now eng in
      unlock_op cl ~from:0 f "unlock_shared";
      Engine.delay (Time.ms 100);
      (match !writer_done with
      | Some (true, at) ->
        (* Granted promptly after the release, far before the 500ms
           budget would expire. *)
        check_bool "woken promptly" true
          (Time.to_ns at - Time.to_ns released_at < 20_000_000)
      | Some (false, _) -> Alcotest.fail "writer timed out despite release"
      | None -> Alcotest.fail "writer still blocked");
      unlock_op cl ~from:1 f "unlock_exclusive")

let test_rwlock_crash_clears_locks () =
  (* Locks are short-term state: after the object crashes and
     reincarnates, old locks are gone (and so is the lock holder's
     claim). *)
  let cl = Cluster.default ~n_nodes:2 () in
  Schema.register cl;
  let f_ref = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let f = lock_file cl in
        f_ref := Some f;
        ignore (ok_or_fail "ckpt" (Cluster.checkpoint_of cl f));
        check_bool "locked" true (lock_op cl ~from:1 f "lock_exclusive" 100))
  in
  Cluster.run cl;
  let f = Option.get !f_ref in
  Cluster.crash_node cl 0;
  Cluster.restart_node cl 0;
  let _ =
    Cluster.in_process cl (fun () ->
        (* The reincarnated object accepts a fresh exclusive lock
           immediately: the crash wiped the old one. *)
        check_bool "fresh lock granted" true
          (lock_op cl ~from:1 f "lock_exclusive" 100))
  in
  Cluster.run cl

let test_make_durable_survives_permanent_loss () =
  (* Mirrored checksites: the file's home node is destroyed and never
     comes back, yet the file and its history survive at a mirror. *)
  let cl = Cluster.default ~n_nodes:4 () in
  Schema.register cl;
  let f_ref = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let root = ok_or_fail "root" (Client.make_root cl ~node:1) in
        let f =
          ok_or_fail "create"
            (Client.create_file cl ~from:0 ~dir:root ~name:"vital" ~node:0
               ~content:(str "v0") ())
        in
        write_once cl ~from:0 ~mode:Txn.Locking f (str "v1");
        ignore
          (ok_or_fail "durable"
             (Client.make_durable cl ~from:0 f ~mirrors:[ 2; 3 ]));
        f_ref := Some f)
  in
  Cluster.run cl;
  let f = Option.get !f_ref in
  Alcotest.(check (list int)) "file mirrored" [ 2; 3 ]
    (List.sort Int.compare (Cluster.checkpoint_sites cl f));
  (* Node 0 dies for good. *)
  Cluster.crash_node cl 0;
  let outcome = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        outcome :=
          Some
            ( Client.read_file cl ~from:1 f,
              Client.read_version_at cl ~from:1 f 0 ))
  in
  Cluster.run cl;
  (match !outcome with
  | Some (Ok (Value.Str "v1"), Ok (Value.Str "v0")) -> ()
  | Some (a, b) ->
    Alcotest.failf "lost data: current=%s v0=%s"
      (match a with Ok _ -> "ok?" | Error e -> Error.to_string e)
      (match b with Ok _ -> "ok?" | Error e -> Error.to_string e)
  | None -> Alcotest.fail "driver did not run");
  (* And it survives the loss of one MIRROR too.  Node 1 cached the
     object's reincarnation site (node 2), so the first attempt times
     out against the dead node — which clears the stale hint — and a
     retry re-locates at the surviving mirror. *)
  Cluster.crash_node cl 2;
  let again = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        (match
           Cluster.invoke cl ~from:1 ~timeout:(Time.ms 100) f ~op:"current" []
         with
        | Error Error.Timeout | Ok _ -> ()
        | Error e ->
          Alcotest.failf "unexpected first-attempt error: %s"
            (Error.to_string e));
        again := Some (Client.read_file cl ~from:1 f))
  in
  Cluster.run cl;
  check_bool "still alive after losing a mirror" true
    (!again = Some (Ok (str "v1")))

let test_checkpoint_tree_full_recovery () =
  (* Build a two-level tree, make it durable in one call, power-cycle
     the whole cluster, and read everything back from disk. *)
  let cl = Cluster.default ~n_nodes:3 () in
  Schema.register cl;
  let saved_root = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
        let sub =
          ok_or_fail "mkdir"
            (Client.mkdir cl ~from:0 ~dir:root ~name:"docs" ~node:1 ())
        in
        ignore
          (ok_or_fail "f1"
             (Client.create_file cl ~from:0 ~dir:root ~name:"top"
                ~content:(str "top-contents") ()));
        ignore
          (ok_or_fail "f2"
             (Client.create_file cl ~from:1 ~dir:sub ~name:"deep" ~node:2
                ~content:(str "deep-contents") ()));
        let n =
          ok_or_fail "checkpoint tree"
            (Client.checkpoint_tree cl ~from:0 ~root)
        in
        (* root + docs + 2 files + 2 versions *)
        check_int "objects checkpointed" 6 n;
        saved_root := Some root)
  in
  Cluster.run cl;
  (* Power-cycle every node: all volatile state is gone. *)
  for i = 0 to 2 do
    Cluster.crash_node cl i
  done;
  for i = 0 to 2 do
    Cluster.restart_node cl i
  done;
  let readback = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let root = Option.get !saved_root in
        let top = Client.resolve cl ~from:2 ~root "top" in
        let deep = Client.resolve cl ~from:2 ~root "docs/deep" in
        match (top, deep) with
        | Ok t, Ok d ->
          readback :=
            Some (Client.read_file cl ~from:2 t, Client.read_file cl ~from:2 d)
        | _ -> ())
  in
  Cluster.run cl;
  match !readback with
  | Some (Ok (Value.Str "top-contents"), Ok (Value.Str "deep-contents")) -> ()
  | Some (a, b) ->
    Alcotest.failf "wrong recovery: %s / %s"
      (match a with Ok _ -> "ok?" | Error e -> Error.to_string e)
      (match b with Ok _ -> "ok?" | Error e -> Error.to_string e)
  | None -> Alcotest.fail "resolution failed after recovery"

(* ------------------------------------------------------------------ *)
(* Deletion *)

let test_delete_file () =
  with_efs (fun cl ->
      let root = ok_or_fail "root" (Client.make_root cl ~node:0) in
      let f =
        ok_or_fail "create"
          (Client.create_file cl ~from:0 ~dir:root ~name:"doomed"
             ~content:(str "v0") ())
      in
      write_once cl ~from:1 ~mode:Txn.Locking f (str "v1");
      ignore
        (ok_or_fail "delete"
           (Client.delete_file cl ~from:0 ~dir:root ~name:"doomed"));
      (* Unbound, and the object itself is gone. *)
      (match Client.resolve cl ~from:0 ~root "doomed" with
      | Error (Error.User_error _) -> ()
      | Ok _ -> Alcotest.fail "still resolvable"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
      Engine.delay (Time.ms 5);
      (match Cluster.invoke cl ~from:1 f ~op:"current" [] with
      | Error Error.No_such_object -> ()
      | Ok _ -> Alcotest.fail "file object survived deletion"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
      Alcotest.(check (list string)) "directory empty" []
        (ok_or_fail "list" (Client.list_dir cl ~from:0 root)))

(* A property crossing both CC modes: concurrent increment transactions
   with retries never lose an update, whatever the mix of 2PL and
   optimistic participants. *)
let prop_txn_no_lost_updates =
  QCheck.Test.make ~name:"mixed-mode increments never lose updates" ~count:10
    QCheck.(pair (int_range 2 8) (int_range 0 1000))
    (fun (n_txns, seed) ->
      let cl = Cluster.default ~seed:(Int64.of_int (seed + 7)) ~n_nodes:3 () in
      Schema.register cl;
      let rng = Splitmix.create (Int64.of_int seed) in
      let committed = ref 0 in
      let file = ref None in
      let _ =
        Cluster.in_process cl (fun () ->
            let root = Result.get_ok (Client.make_root cl ~node:0) in
            let f =
              Result.get_ok
                (Client.create_file cl ~from:0 ~dir:root ~name:"ctr"
                   ~content:(Value.Int 0) ())
            in
            file := Some f;
            for i = 0 to n_txns - 1 do
              let mode =
                if Splitmix.bool rng then Txn.Locking else Txn.Optimistic
              in
              ignore
                (Cluster.in_process cl (fun () ->
                     let rec attempt k =
                       if k > 25 then ()
                       else begin
                         let t = Txn.begin_txn cl ~from:(i mod 3) ~mode in
                         let read =
                           match mode with
                           | Txn.Locking -> Txn.read_for_update t f
                           | Txn.Optimistic | Txn.Snapshot -> Txn.read t f
                         in
                         match read with
                         | Ok (Value.Int v) -> (
                           ignore (Txn.write t f (Value.Int (v + 1)));
                           match Txn.commit t with
                           | Txn.Committed -> incr committed
                           | Txn.Conflict | Txn.Failed _ ->
                             Txn.abort t;
                             attempt (k + 1))
                         | Ok _ | Error _ ->
                           Txn.abort t;
                           attempt (k + 1)
                       end
                     in
                     attempt 0))
            done)
      in
      Cluster.run cl;
      let final = ref None in
      let _ =
        Cluster.in_process cl (fun () ->
            match !file with
            | Some f -> final := Some (Client.read_file cl ~from:0 f)
            | None -> ())
      in
      Cluster.run cl;
      (* Every transaction eventually committed, and the file reflects
         exactly the committed count: no update was lost. *)
      !committed = n_txns
      && !final = Some (Ok (Value.Int !committed)))

let () =
  Alcotest.run "eden_efs"
    [
      ( "naming",
        [
          Alcotest.test_case "mkdir + resolve" `Quick test_mkdir_and_resolve;
          Alcotest.test_case "create + read" `Quick test_create_and_read_file;
          Alcotest.test_case "empty file" `Quick test_empty_file_has_no_current;
          Alcotest.test_case "duplicate bind" `Quick
            test_duplicate_bind_rejected;
        ] );
      ( "versions",
        [ Alcotest.test_case "accumulate" `Quick test_versions_accumulate ] );
      ( "locking",
        [
          Alcotest.test_case "serialised increments" `Quick
            test_locking_serialises_increments;
          Alcotest.test_case "deadlock via timeout" `Quick
            test_lock_timeout_breaks_deadlock;
        ] );
      ( "optimistic",
        [
          Alcotest.test_case "write conflict" `Quick
            test_optimistic_conflict_detected;
          Alcotest.test_case "read validation" `Quick
            test_optimistic_read_validation;
          Alcotest.test_case "retry converges" `Quick
            test_optimistic_retry_converges;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "stale reads commit" `Quick
            test_snapshot_reads_never_abort;
          Alcotest.test_case "repeatable reads" `Quick
            test_snapshot_repeatable_reads;
          Alcotest.test_case "first committer wins" `Quick
            test_snapshot_first_committer_wins;
          Alcotest.test_case "admits write skew" `Quick
            test_snapshot_admits_write_skew;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "two files" `Quick test_two_file_commit_atomic;
          Alcotest.test_case "abort discards" `Quick test_abort_discards;
        ] );
      ( "replication",
        [
          Alcotest.test_case "replicated versions" `Quick
            test_commit_with_replicas;
          Alcotest.test_case "durable commit" `Quick
            test_durable_commit_survives_crash;
          Alcotest.test_case "checkpoint tree + full recovery" `Quick
            test_checkpoint_tree_full_recovery;
          Alcotest.test_case "make_durable survives permanent loss" `Quick
            test_make_durable_survives_permanent_loss;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers coexist" `Quick
            test_rwlock_readers_coexist;
          Alcotest.test_case "writer excludes readers" `Quick
            test_rwlock_writer_excludes_readers;
          Alcotest.test_case "blocked writer wakes" `Quick
            test_rwlock_blocked_writer_wakes;
          Alcotest.test_case "crash clears locks" `Quick
            test_rwlock_crash_clears_locks;
        ] );
      ( "deletion",
        [
          Alcotest.test_case "delete file" `Quick test_delete_file;
          QCheck_alcotest.to_alcotest prop_txn_no_lost_updates;
        ] );
    ]
