(* Tests for the standard object templates (paper sec. 4.1: "language
   subsystems will provide standard object templates"). *)

open Eden_sim
open Eden_kernel
open Eden_typesys

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Error.to_string e)

let with_cluster ~types body =
  let cl = Cluster.default ~n_nodes:2 () in
  List.iter (Cluster.register_type cl) types;
  let result = ref None in
  let _ = Cluster.in_process cl (fun () -> result := Some (body cl)) in
  Cluster.run cl;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "driver did not complete"

(* ------------------------------------------------------------------ *)
(* Register *)

let test_register_template () =
  let tm = Templates.register_type ~name:"cell" in
  with_cluster ~types:[ tm ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"cell" (Value.Int 1))
      in
      check_bool "read initial" true
        (Cluster.invoke cl ~from:1 cap ~op:"read" [] = Ok [ Value.Int 1 ]);
      ignore
        (ok_or_fail "write"
           (Cluster.invoke cl ~from:1 cap ~op:"write" [ Value.Str "two" ]));
      check_bool "read new" true
        (Cluster.invoke cl ~from:0 cap ~op:"read" [] = Ok [ Value.Str "two" ]);
      (* The write right (Aux 0) is enforced. *)
      let read_only = Capability.restrict cap Rights.invoke_only in
      match Cluster.invoke cl ~from:0 read_only ~op:"write" [ Value.Unit ] with
      | Error (Error.Rights_violation _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "write without Aux 0 accepted")

(* ------------------------------------------------------------------ *)
(* Queue *)

let test_queue_template () =
  let tm = Templates.queue_type ~name:"q" in
  with_cluster ~types:[ tm ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"q" (Value.List []))
      in
      (match Cluster.invoke cl ~from:0 cap ~op:"dequeue" [] with
      | Error (Error.User_error _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "empty dequeue");
      List.iter
        (fun i ->
          ignore
            (ok_or_fail "enqueue"
               (Cluster.invoke cl ~from:(i mod 2) cap ~op:"enqueue"
                  [ Value.Int i ])))
        [ 1; 2; 3 ];
      check_bool "length" true
        (Cluster.invoke cl ~from:0 cap ~op:"length" [] = Ok [ Value.Int 3 ]);
      check_bool "peek" true
        (Cluster.invoke cl ~from:1 cap ~op:"peek" [] = Ok [ Value.Int 1 ]);
      check_bool "fifo 1" true
        (Cluster.invoke cl ~from:0 cap ~op:"dequeue" [] = Ok [ Value.Int 1 ]);
      check_bool "fifo 2" true
        (Cluster.invoke cl ~from:0 cap ~op:"dequeue" [] = Ok [ Value.Int 2 ]);
      check_bool "fifo 3" true
        (Cluster.invoke cl ~from:1 cap ~op:"dequeue" [] = Ok [ Value.Int 3 ]))

(* ------------------------------------------------------------------ *)
(* KV *)

let test_kv_template () =
  let tm = Templates.kv_type ~name:"kv" in
  with_cluster ~types:[ tm ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"kv" (Value.List []))
      in
      let put k v =
        ignore
          (ok_or_fail "put"
             (Cluster.invoke cl ~from:0 cap ~op:"put" [ Value.Str k; v ]))
      in
      put "a" (Value.Int 1);
      put "b" (Value.Int 2);
      put "a" (Value.Int 10) (* overwrite *);
      check_bool "get a" true
        (Cluster.invoke cl ~from:1 cap ~op:"get" [ Value.Str "a" ]
        = Ok [ Value.Int 10 ]);
      check_bool "size" true
        (Cluster.invoke cl ~from:0 cap ~op:"size" [] = Ok [ Value.Int 2 ]);
      ignore
        (ok_or_fail "delete"
           (Cluster.invoke cl ~from:0 cap ~op:"delete" [ Value.Str "a" ]));
      (match Cluster.invoke cl ~from:0 cap ~op:"get" [ Value.Str "a" ] with
      | Error (Error.User_error _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "deleted key still present");
      match Cluster.invoke cl ~from:0 cap ~op:"keys" [] with
      | Ok [ Value.List [ Value.Str "b" ] ] -> ()
      | Ok _ | Error _ -> Alcotest.fail "keys wrong")

(* ------------------------------------------------------------------ *)
(* Auto-checkpoint wrapper *)

let test_auto_checkpoint () =
  let tm =
    Templates.with_auto_checkpoint ~every:3 (Templates.queue_type ~name:"aq")
  in
  let cl = Cluster.default ~n_nodes:2 () in
  Cluster.register_type cl tm;
  let cap_ref = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let cap =
          ok_or_fail "create"
            (Cluster.create_object cl ~node:0 ~type_name:"aq" (Value.List []))
        in
        cap_ref := Some cap;
        (* Two mutations: below the threshold, no checkpoint yet. *)
        for i = 1 to 2 do
          ignore
            (ok_or_fail "enq"
               (Cluster.invoke cl ~from:0 cap ~op:"enqueue" [ Value.Int i ]))
        done;
        Alcotest.(check (list int))
          "no snapshot yet" []
          (Cluster.checkpoint_sites cl cap);
        (* Third mutation triggers the template's checkpoint. *)
        ignore
          (ok_or_fail "enq3"
             (Cluster.invoke cl ~from:0 cap ~op:"enqueue" [ Value.Int 3 ]));
        check_bool "snapshot exists" true
          (Cluster.checkpoint_sites cl cap <> []);
        (* A fourth mutation happens after the checkpoint... *)
        ignore
          (ok_or_fail "enq4"
             (Cluster.invoke cl ~from:0 cap ~op:"enqueue" [ Value.Int 4 ])))
  in
  Cluster.run cl;
  let cap = Option.get !cap_ref in
  (* Crash the node: the object reincarnates from the every=3 boundary,
     losing only the fourth element. *)
  Cluster.crash_node cl 0;
  Cluster.restart_node cl 0;
  let len = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        len := Some (Cluster.invoke cl ~from:1 cap ~op:"length" []))
  in
  Cluster.run cl;
  check_bool "recovered at checkpoint boundary" true
    (!len = Some (Ok [ Value.Int 3 ]))

let test_auto_checkpoint_validation () =
  Alcotest.check_raises "every=0"
    (Invalid_argument "Templates.with_auto_checkpoint: every < 1") (fun () ->
      ignore
        (Templates.with_auto_checkpoint ~every:0
           (Templates.queue_type ~name:"x")))

(* ------------------------------------------------------------------ *)
(* Operation log wrapper *)

let test_operation_log () =
  let tm = Templates.with_operation_log (Templates.register_type ~name:"lc") in
  let cl = Cluster.default ~n_nodes:1 () in
  Cluster.register_type cl tm;
  let tr = Cluster.trace cl in
  Trace.enable tr;
  let _ =
    Cluster.in_process cl (fun () ->
        match
          Cluster.create_object cl ~node:0 ~type_name:"lc" (Value.Int 0)
        with
        | Error _ -> ()
        | Ok cap ->
          ignore (Cluster.invoke cl ~from:0 cap ~op:"read" []);
          ignore (Cluster.invoke cl ~from:0 cap ~op:"write" [ Value.Int 1 ]))
  in
  Cluster.run cl;
  let app_records =
    List.filter
      (fun r -> r.Trace.category = Trace.App)
      (Trace.recent tr)
  in
  check_int "two operations logged" 2 (List.length app_records);
  check_bool "read logged ok" true
    (List.exists
       (fun r ->
         String.length r.Trace.message >= 8
         && String.sub r.Trace.message (String.length r.Trace.message - 8) 8
            = "read: ok")
       app_records)

let () =
  Alcotest.run "eden_templates"
    [
      ( "types",
        [
          Alcotest.test_case "register" `Quick test_register_template;
          Alcotest.test_case "queue" `Quick test_queue_template;
          Alcotest.test_case "kv" `Quick test_kv_template;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "auto-checkpoint" `Quick test_auto_checkpoint;
          Alcotest.test_case "auto-checkpoint validation" `Quick
            test_auto_checkpoint_validation;
          Alcotest.test_case "operation log" `Quick test_operation_log;
        ] );
    ]
