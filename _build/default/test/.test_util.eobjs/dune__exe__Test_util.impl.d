test/test_util.ml: Alcotest Array Eden_util Fifo Float Fun Gen Idgen Int List Pqueue QCheck QCheck_alcotest Splitmix Stats String Table Time
