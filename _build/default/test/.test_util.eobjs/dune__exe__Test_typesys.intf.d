test/test_typesys.mli:
