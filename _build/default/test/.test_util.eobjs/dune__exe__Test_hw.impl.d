test/test_hw.ml: Alcotest Costs Cpu Disk Eden_hw Eden_sim Eden_util Engine List Machine Memory QCheck QCheck_alcotest Time
