test/test_efs.ml: Alcotest Client Cluster Eden_efs Eden_kernel Eden_sim Eden_util Engine Error Int Int64 List Option Printf QCheck QCheck_alcotest Result Schema Splitmix String Time Txn Value
