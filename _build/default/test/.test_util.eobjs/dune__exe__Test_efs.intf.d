test/test_efs.mli:
