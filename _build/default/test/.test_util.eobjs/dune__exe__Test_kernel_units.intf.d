test/test_kernel_units.mli:
