test/test_models.ml: Alcotest Array Cluster Eden_efs Eden_kernel Eden_typesys Error Hashtbl Int64 List Map QCheck QCheck_alcotest Queue Result String Templates Value
