test/test_templates.ml: Alcotest Capability Cluster Eden_kernel Eden_sim Eden_typesys Error List Option Rights String Templates Trace Value
