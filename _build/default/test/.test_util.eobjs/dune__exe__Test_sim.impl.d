test/test_sim.ml: Alcotest Buffer Condition Eden_sim Eden_util Engine Fun Gen Int64 List Mailbox Promise QCheck QCheck_alcotest Resource Semaphore Splitmix Stats Stdlib Time Trace
