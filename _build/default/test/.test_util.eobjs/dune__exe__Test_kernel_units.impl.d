test/test_kernel_units.ml: Alcotest Api Capability Eden_kernel Error Format List Message Name Opclass Reliability Result Rights String Typemgr Value
