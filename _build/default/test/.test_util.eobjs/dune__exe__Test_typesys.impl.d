test/test_typesys.ml: Alcotest Api Cluster Display Eden_kernel Eden_typesys Error Hierarchy List String Typemgr Value
