test/test_templates.mli:
