test/test_baseline.ml: Alcotest Api Central Cluster Eden_baseline Eden_kernel Eden_sim Eden_util Engine Error Rpc Time Typemgr Value
