test/test_net.ml: Alcotest Array Eden_net Eden_sim Eden_util Engine Int64 Internet Lan List Msglink Params Printf QCheck QCheck_alcotest Splitmix Stats String Time
