test/test_kernel2.ml: Alcotest Api Array Capability Cluster Eden_kernel Eden_sim Eden_util Engine Error Fun Int64 List Name Printf Promise QCheck QCheck_alcotest Rights Splitmix Time Typemgr Value
