(* Tests for the comparison baselines: location-dependent RPC and the
   centralized configuration. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Eden_baseline

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_rpc ?(n = 3) body =
  let f = Rpc.default ~n_nodes:n () in
  let result = ref None in
  let _ = Rpc.in_process f (fun () -> result := Some (body f)) in
  Rpc.run f;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "driver did not complete"

let echo_handler ctx args =
  ctx.Rpc.rpc_compute (Time.ms 1);
  Ok args

let test_rpc_local_and_remote () =
  with_rpc (fun f ->
      Rpc.register f ~node:0 ~proc:"echo" echo_handler;
      Rpc.register f ~node:1 ~proc:"echo" echo_handler;
      let r = Rpc.call f ~from:0 ~node:0 ~proc:"echo" [ Value.Int 1 ] in
      check_bool "local echo" true (r = Ok [ Value.Int 1 ]);
      let r = Rpc.call f ~from:0 ~node:1 ~proc:"echo" [ Value.Int 2 ] in
      check_bool "remote echo" true (r = Ok [ Value.Int 2 ]);
      check_int "one remote" 1 (Rpc.remote_calls f);
      check_int "two total" 2 (Rpc.calls_made f))

let test_rpc_remote_slower () =
  with_rpc (fun f ->
      Rpc.register f ~node:0 ~proc:"echo" echo_handler;
      Rpc.register f ~node:1 ~proc:"echo" echo_handler;
      let eng = Rpc.engine f in
      let timed thunk =
        let t0 = Engine.now eng in
        ignore (thunk ());
        Time.to_ns (Time.diff (Engine.now eng) t0)
      in
      let local =
        timed (fun () -> Rpc.call f ~from:0 ~node:0 ~proc:"echo" [])
      in
      let remote =
        timed (fun () -> Rpc.call f ~from:0 ~node:1 ~proc:"echo" [])
      in
      check_bool "remote > local" true (remote > local))

let test_rpc_errors () =
  with_rpc (fun f ->
      Rpc.register f ~node:1 ~proc:"echo" echo_handler;
      (match Rpc.call f ~from:0 ~node:1 ~proc:"nope" [] with
      | Error (Error.No_such_operation _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected No_such_operation");
      Alcotest.check_raises "duplicate registration"
        (Invalid_argument "Rpc.register: \"echo\" already registered on node 1")
        (fun () -> Rpc.register f ~node:1 ~proc:"echo" echo_handler))

let test_rpc_timeout () =
  with_rpc (fun f ->
      Rpc.register f ~node:1 ~proc:"slow" (fun ctx args ->
          ctx.Rpc.rpc_compute (Time.ms 100);
          Ok args);
      match
        Rpc.call f ~from:0 ~timeout:(Time.ms 5) ~node:1 ~proc:"slow" []
      with
      | Error Error.Timeout -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected timeout")

let test_rpc_nested_call () =
  with_rpc (fun f ->
      Rpc.register f ~node:2 ~proc:"leaf" (fun _ args -> Ok args);
      Rpc.register f ~node:1 ~proc:"relay" (fun ctx args ->
          ctx.Rpc.rpc_call ~node:2 ~proc:"leaf" args);
      let r = Rpc.call f ~from:0 ~node:1 ~proc:"relay" [ Value.Str "x" ] in
      check_bool "relayed" true (r = Ok [ Value.Str "x" ]))

let test_rpc_no_transparency () =
  (* The defining limitation: calling the wrong node fails even though
     the procedure exists elsewhere. *)
  with_rpc (fun f ->
      Rpc.register f ~node:2 ~proc:"only_here" echo_handler;
      match Rpc.call f ~from:0 ~node:1 ~proc:"only_here" [] with
      | Error (Error.No_such_operation _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "location dependence violated")

(* ------------------------------------------------------------------ *)
(* Central configuration *)

let counter_type =
  let open Api in
  Typemgr.make_exn ~name:"central_counter"
    [
      Typemgr.operation "incr" (fun ctx args ->
          let* () = no_args args in
          let* n = int_arg (ctx.get_repr ()) in
          let* () = ctx.set_repr (Value.Int (n + 1)) in
          reply [ Value.Int (n + 1) ]);
    ]

let test_central_placement () =
  let cl = Central.cluster ~terminals:3 () in
  Cluster.register_type cl counter_type;
  let outcome = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        match Central.create_on_server cl ~type_name:"central_counter"
                (Value.Int 0)
        with
        | Error e -> outcome := Some (Error e)
        | Ok cap ->
          (* All terminals share the same central object. *)
          let r1 = Cluster.invoke cl ~from:1 cap ~op:"incr" [] in
          let r2 = Cluster.invoke cl ~from:2 cap ~op:"incr" [] in
          let r3 = Cluster.invoke cl ~from:3 cap ~op:"incr" [] in
          outcome := Some (Ok (r1, r2, r3, Cluster.where_is cl cap)))
  in
  Cluster.run cl;
  match !outcome with
  | Some (Ok (r1, _, r3, where)) ->
    check_bool "first incr" true (r1 = Ok [ Value.Int 1 ]);
    check_bool "third incr" true (r3 = Ok [ Value.Int 3 ]);
    check_bool "lives on server" true (where = Some Central.server_node);
    check_bool "remote traffic happened" true
      (Cluster.stats_remote_invocations cl >= 3)
  | Some (Error e) -> Alcotest.failf "create: %s" (Error.to_string e)
  | None -> Alcotest.fail "driver did not run"

let () =
  Alcotest.run "eden_baseline"
    [
      ( "rpc",
        [
          Alcotest.test_case "local and remote" `Quick
            test_rpc_local_and_remote;
          Alcotest.test_case "remote slower" `Quick test_rpc_remote_slower;
          Alcotest.test_case "errors" `Quick test_rpc_errors;
          Alcotest.test_case "timeout" `Quick test_rpc_timeout;
          Alcotest.test_case "nested call" `Quick test_rpc_nested_call;
          Alcotest.test_case "no transparency" `Quick
            test_rpc_no_transparency;
        ] );
      ( "central",
        [ Alcotest.test_case "placement" `Quick test_central_placement ] );
    ]
