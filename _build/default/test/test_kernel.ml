(* End-to-end tests of the Eden kernel: objects, capabilities,
   location-independent invocation, invocation classes, checkpointing,
   crash/reincarnation, node failure, mobility and replication. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Api

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Error.to_string e)

let expect_error label expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" label (Error.to_string expected)
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: got %s" label (Error.to_string e))
      true
      (Error.equal e expected)

let int_result label = function
  | Ok [ Value.Int n ] -> n
  | Ok vs ->
    Alcotest.failf "%s: unexpected result %s" label
      (String.concat ";" (List.map (Format.asprintf "%a" Value.pp) vs))
  | Error e -> Alcotest.failf "%s: %s" label (Error.to_string e)

(* A counter: the canonical small Eden type. *)
let counter_ops =
  [
    Typemgr.operation "get" ~mutates:false (fun ctx args ->
        let* () = no_args args in
        let* n = int_arg (ctx.get_repr ()) in
        reply [ Value.Int n ]);
    Typemgr.operation "incr" (fun ctx args ->
        let* () = no_args args in
        let* n = int_arg (ctx.get_repr ()) in
        let* () = ctx.set_repr (Value.Int (n + 1)) in
        reply [ Value.Int (n + 1) ]);
    Typemgr.operation "add" (fun ctx args ->
        let* v = arg1 args in
        let* k = int_arg v in
        let* n = int_arg (ctx.get_repr ()) in
        let* () = ctx.set_repr (Value.Int (n + k)) in
        reply [ Value.Int (n + k) ]);
    Typemgr.operation "checkpoint" (fun ctx args ->
        let* () = no_args args in
        let* () = ctx.checkpoint () in
        reply_unit);
    Typemgr.operation "set_reliability_remote" (fun ctx args ->
        let* v = arg1 args in
        let* site = int_arg v in
        let* () = ctx.set_reliability (Reliability.Remote site) in
        reply_unit);
    Typemgr.operation "set_reliability_mirrored" (fun ctx args ->
        let* v = arg1 args in
        let* l = Value.to_list v |> Result.map_error (fun m -> Error.Bad_arguments m) in
        let sites =
          List.filter_map (fun x -> Result.to_option (Value.to_int x)) l
        in
        let* () = ctx.set_reliability (Reliability.Mirrored sites) in
        reply_unit);
    Typemgr.operation "crash" (fun ctx args ->
        let* () = no_args args in
        ctx.crash ();
        user_error "unreachable after crash");
    Typemgr.operation "burn" (fun ctx args ->
        (* consume the given number of microseconds of CPU *)
        let* v = arg1 args in
        let* us = int_arg v in
        ctx.compute (Time.us us);
        reply_unit);
    Typemgr.operation "move_self" (fun ctx args ->
        let* v = arg1 args in
        let* dst = int_arg v in
        let* () = ctx.move_to dst in
        reply [ Value.Int (ctx.node_id ()) ]);
    Typemgr.operation "freeze_self" (fun ctx args ->
        let* () = no_args args in
        ctx.freeze ();
        reply_unit);
  ]

let counter_type = Typemgr.make_exn ~name:"counter" counter_ops

(* Run [body] as a driver process inside a fresh cluster and return its
   result after the simulation finishes. *)
let with_cluster ?seed ?(n = 3) ?(types = [ counter_type ]) body =
  let cl = Cluster.default ?seed ~n_nodes:n () in
  List.iter (Cluster.register_type cl) types;
  let result = ref None in
  let _ = Cluster.in_process cl (fun () -> result := Some (body cl)) in
  Cluster.run cl;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "driver process did not complete"

let new_counter cl ~node init =
  ok_or_fail "create counter"
    (Cluster.create_object cl ~node ~type_name:"counter" (Value.Int init))

(* ------------------------------------------------------------------ *)
(* Creation and local invocation *)

let test_create_and_invoke_local () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 7 in
      let r = Cluster.invoke cl ~from:0 cap ~op:"get" [] in
      check_int "initial" 7 (int_result "get" r);
      let r = Cluster.invoke cl ~from:0 cap ~op:"incr" [] in
      check_int "incremented" 8 (int_result "incr" r);
      let r = Cluster.invoke cl ~from:0 cap ~op:"add" [ Value.Int 10 ] in
      check_int "added" 18 (int_result "add" r))

let test_unknown_type () =
  with_cluster (fun cl ->
      match Cluster.create_object cl ~node:0 ~type_name:"nope" Value.Unit with
      | Ok _ -> Alcotest.fail "created object of unknown type"
      | Error (Error.Bad_arguments _) -> ()
      | Error e -> Alcotest.failf "unexpected error %s" (Error.to_string e))

let test_no_such_operation () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      expect_error "bogus op"
        (Error.No_such_operation "frobnicate")
        (Cluster.invoke cl ~from:0 cap ~op:"frobnicate" []))

let test_bad_arguments () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      (match Cluster.invoke cl ~from:0 cap ~op:"add" [ Value.Str "x" ] with
      | Error (Error.Bad_arguments _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Bad_arguments");
      match Cluster.invoke cl ~from:0 cap ~op:"add" [] with
      | Error (Error.Bad_arguments _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected arity error")

let test_invoke_bogus_name () =
  with_cluster (fun cl ->
      let ghost =
        Capability.make (Name.make ~birth_node:0 ~serial:424242) Rights.all
      in
      expect_error "ghost" Error.No_such_object
        (Cluster.invoke cl ~from:0 ghost ~op:"get" []))

(* ------------------------------------------------------------------ *)
(* Rights *)

let test_rights_restriction () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 1 in
      let weak = Capability.restrict cap Rights.none in
      expect_error "no invoke right" (Error.Rights_violation "get")
        (Cluster.invoke cl ~from:0 weak ~op:"get" []);
      let invoke_only = Capability.restrict cap Rights.invoke_only in
      check_int "invoke-only can read" 1
        (int_result "get" (Cluster.invoke cl ~from:0 invoke_only ~op:"get" [])))

let test_aux_rights_required () =
  let guarded =
    Typemgr.make_exn ~name:"guarded"
      [
        Typemgr.operation "read" ~mutates:false (fun ctx args ->
            let* () = no_args args in
            reply [ ctx.get_repr () ]);
        Typemgr.operation "write" ~required:[ Rights.Aux 0 ] (fun ctx args ->
            let* v = arg1 args in
            let* () = ctx.set_repr v in
            reply_unit);
      ]
  in
  with_cluster ~types:[ guarded ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"guarded"
             (Value.Int 0))
      in
      let read_only =
        Capability.restrict cap (Rights.of_list [ Rights.Invoke ])
      in
      expect_error "write denied" (Error.Rights_violation "write")
        (Cluster.invoke cl ~from:0 read_only ~op:"write" [ Value.Int 9 ]);
      ignore
        (ok_or_fail "write with full cap"
           (Cluster.invoke cl ~from:0 cap ~op:"write" [ Value.Int 9 ]));
      check_int "readable" 9
        (int_result "read"
           (Cluster.invoke cl ~from:0 read_only ~op:"read" [])))

let test_move_requires_right () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      let weak = Capability.restrict cap Rights.invoke_only in
      expect_error "move denied" (Error.Rights_violation "move")
        (Cluster.move cl weak ~to_node:1))

(* ------------------------------------------------------------------ *)
(* Remote invocation *)

let test_remote_invoke () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 100 in
      let r = Cluster.invoke cl ~from:1 cap ~op:"incr" [] in
      check_int "remote incr" 101 (int_result "incr" r);
      check_bool "remote path used" true
        (Cluster.stats_remote_invocations cl >= 1);
      (* And the change is visible locally. *)
      check_int "visible at home" 101
        (int_result "get" (Cluster.invoke cl ~from:0 cap ~op:"get" [])))

let test_remote_latency_exceeds_local () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      let time_invoke from =
        let t0 = Engine.now (Cluster.engine cl) in
        ignore (ok_or_fail "get" (Cluster.invoke cl ~from cap ~op:"get" []));
        Time.to_ns (Time.diff (Engine.now (Cluster.engine cl)) t0)
      in
      let local = time_invoke 0 in
      let remote_cold = time_invoke 1 in
      let remote_warm = time_invoke 1 in
      check_bool "remote slower than local" true (remote_cold > local);
      check_bool "hint cache helps" true (remote_warm < remote_cold);
      check_bool "warm remote still slower than local" true
        (remote_warm > local))

let test_capability_passing () =
  (* An adder object that receives a capability for a counter and
     invokes it: object-to-object invocation with cap parameters. *)
  let client =
    Typemgr.make_exn ~name:"client"
      [
        Typemgr.operation "poke" (fun ctx args ->
            let* v = arg1 args in
            let* target = cap_arg v in
            let* r = ctx.invoke target ~op:"incr" [] in
            reply r);
      ]
  in
  with_cluster ~types:[ counter_type; client ] (fun cl ->
      let counter = new_counter cl ~node:0 5 in
      let client_cap =
        ok_or_fail "create client"
          (Cluster.create_object cl ~node:2 ~type_name:"client" Value.Unit)
      in
      let r =
        Cluster.invoke cl ~from:1 client_cap ~op:"poke"
          [ Value.Cap counter ]
      in
      check_int "chained invocation" 6 (int_result "poke" r))

let test_remote_create () =
  let spawner =
    Typemgr.make_exn ~name:"spawner"
      [
        Typemgr.operation "spawn_counter" (fun ctx args ->
            let* v = arg1 args in
            let* node = int_arg v in
            let* cap =
              ctx.create_object ~type_name:"counter" ~node (Value.Int 55)
            in
            reply [ Value.Cap cap ]);
      ]
  in
  with_cluster ~types:[ counter_type; spawner ] (fun cl ->
      let sp =
        ok_or_fail "create spawner"
          (Cluster.create_object cl ~node:0 ~type_name:"spawner" Value.Unit)
      in
      match Cluster.invoke cl ~from:0 sp ~op:"spawn_counter" [ Value.Int 2 ] with
      | Ok [ Value.Cap c ] ->
        check_bool "created on node 2" true (Cluster.where_is cl c = Some 2);
        check_int "value" 55
          (int_result "get" (Cluster.invoke cl ~from:1 c ~op:"get" []))
      | Ok _ -> Alcotest.fail "unexpected reply shape"
      | Error e -> Alcotest.failf "spawn failed: %s" (Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Invocation classes and intra-object concurrency *)

let concurrent_type limit =
  Typemgr.make_exn ~name:(Printf.sprintf "conc%d" limit)
    ~classes:(Opclass.one_class ~name:"all" ~operations:[ "work" ] ~limit)
    [
      Typemgr.operation "work" (fun ctx args ->
          let* v = arg1 args in
          let* ms = int_arg v in
          (* Block on virtual time (not CPU) so concurrency is bounded
             only by the class limit. *)
          ignore ms;
          ignore ctx;
          Engine.delay (Time.ms ms);
          reply_unit);
    ]

let run_class_experiment ~limit ~jobs =
  let tm = concurrent_type limit in
  with_cluster ~types:[ tm ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0
             ~type_name:(Typemgr.name tm) Value.Unit)
      in
      let t0 = Engine.now (Cluster.engine cl) in
      let promises =
        List.init jobs (fun _ ->
            Cluster.invoke_async cl ~from:0 cap ~op:"work" [ Value.Int 10 ])
      in
      List.iter
        (fun pr ->
          match Promise.await pr with
          | Some (Ok _) -> ()
          | Some (Error e) -> Alcotest.failf "work failed: %s" (Error.to_string e)
          | None -> Alcotest.fail "promise unfilled")
        promises;
      Time.to_ns (Time.diff (Engine.now (Cluster.engine cl)) t0))

let test_class_limit_serialises () =
  let serial = run_class_experiment ~limit:1 ~jobs:4 in
  let parallel = run_class_experiment ~limit:4 ~jobs:4 in
  (* Four 10ms operations: limit 1 must take at least 40ms of blocking
     time; limit 4 should overlap them almost fully. *)
  check_bool "serial >= 40ms" true (serial >= 40_000_000);
  check_bool "parallel < 2x one op" true (parallel < 25_000_000);
  check_bool "parallel much faster" true (parallel * 2 < serial)

let test_distinct_classes_concurrent () =
  let tm =
    Typemgr.make_exn ~name:"twoclass"
      ~classes:
        [
          { Opclass.class_name = "a"; operations = [ "opa" ]; limit = 1 };
          { Opclass.class_name = "b"; operations = [ "opb" ]; limit = 1 };
        ]
      [
        Typemgr.operation "opa" (fun _ args ->
            let* () = no_args args in
            Engine.delay (Time.ms 20);
            reply_unit);
        Typemgr.operation "opb" (fun _ args ->
            let* () = no_args args in
            Engine.delay (Time.ms 20);
            reply_unit);
      ]
  in
  with_cluster ~types:[ tm ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"twoclass" Value.Unit)
      in
      let t0 = Engine.now (Cluster.engine cl) in
      let pa = Cluster.invoke_async cl ~from:0 cap ~op:"opa" [] in
      let pb = Cluster.invoke_async cl ~from:0 cap ~op:"opb" [] in
      ignore (Promise.await pa);
      ignore (Promise.await pb);
      let elapsed = Time.to_ns (Time.diff (Engine.now (Cluster.engine cl)) t0) in
      (* The two classes overlap: well under 40ms. *)
      check_bool "classes overlap" true (elapsed < 30_000_000))

let test_ports_and_behaviours () =
  (* A behaviour drains a port and accumulates into the repr: the
     paper's "caretaker" pattern. *)
  let tm =
    Typemgr.make_exn ~name:"accumulator"
      ~behaviours:
        [
          {
            Typemgr.b_name = "drain";
            b_body =
              (fun ctx ->
                let port = ctx.port "in" in
                let rec loop () =
                  match Eden_sim.Mailbox.recv port with
                  | Some v -> (
                    match (Value.to_int v, Value.to_int (ctx.get_repr ())) with
                    | Ok k, Ok n ->
                      ignore (ctx.set_repr (Value.Int (n + k)));
                      loop ()
                    | _ -> loop ())
                  | None -> loop ()
                in
                loop ());
          };
        ]
      [
        Typemgr.operation "feed" (fun ctx args ->
            let* v = arg1 args in
            let* _k = int_arg v in
            ignore (Eden_sim.Mailbox.try_send (ctx.port "in") v);
            reply_unit);
        Typemgr.operation "total" ~mutates:false (fun ctx args ->
            let* () = no_args args in
            reply [ ctx.get_repr () ]);
      ]
  in
  with_cluster ~types:[ tm ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"accumulator"
             (Value.Int 0))
      in
      List.iter
        (fun k ->
          ignore
            (ok_or_fail "feed"
               (Cluster.invoke cl ~from:0 cap ~op:"feed" [ Value.Int k ])))
        [ 1; 2; 3; 4 ];
      (* Give the behaviour time to drain. *)
      Engine.delay (Time.ms 10);
      check_int "behaviour accumulated" 10
        (int_result "total" (Cluster.invoke cl ~from:0 cap ~op:"total" [])))

let test_semaphore_no_lost_updates () =
  let tm =
    Typemgr.make_exn ~name:"critical2"
      ~classes:
        (Opclass.one_class ~name:"all" ~operations:[ "bump"; "get" ] ~limit:8)
      [
        Typemgr.operation "bump" (fun ctx args ->
            let* () = no_args args in
            let mutex = ctx.semaphore "mutex" ~init:1 in
            ignore (Eden_sim.Semaphore.acquire mutex);
            let* n = int_arg (ctx.get_repr ()) in
            Engine.delay (Time.ms 1);
            let* () = ctx.set_repr (Value.Int (n + 1)) in
            Eden_sim.Semaphore.release mutex;
            reply_unit);
        Typemgr.operation "get" ~mutates:false (fun ctx args ->
            let* () = no_args args in
            reply [ ctx.get_repr () ]);
      ]
  in
  with_cluster ~types:[ tm ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"critical2"
             (Value.Int 0))
      in
      let ps =
        List.init 10 (fun _ ->
            Cluster.invoke_async cl ~from:0 cap ~op:"bump" [])
      in
      List.iter (fun p -> ignore (Promise.await p)) ps;
      check_int "no lost updates" 10
        (int_result "get" (Cluster.invoke cl ~from:0 cap ~op:"get" [])))

(* ------------------------------------------------------------------ *)
(* Checkpoint, crash, reincarnation *)

let test_crash_without_checkpoint_loses_object () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 3 in
      expect_error "crash op reports crash" Error.Object_crashed
        (Cluster.invoke cl ~from:0 cap ~op:"crash" []);
      expect_error "object gone" Error.No_such_object
        (Cluster.invoke cl ~from:0 cap ~op:"get" []);
      check_bool "not active" false (Cluster.is_active cl cap))

let test_checkpoint_then_crash_reincarnates () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      ignore (ok_or_fail "add" (Cluster.invoke cl ~from:0 cap ~op:"add" [ Value.Int 41 ]));
      ignore (ok_or_fail "ckpt" (Cluster.invoke cl ~from:0 cap ~op:"checkpoint" []));
      (* Mutate after the checkpoint: this update must be lost. *)
      ignore (ok_or_fail "incr" (Cluster.invoke cl ~from:0 cap ~op:"incr" []));
      expect_error "crash" Error.Object_crashed
        (Cluster.invoke cl ~from:0 cap ~op:"crash" []);
      check_bool "passive now" false (Cluster.is_active cl cap);
      (* Next invocation reincarnates from the checkpoint. *)
      check_int "state from checkpoint" 41
        (int_result "get" (Cluster.invoke cl ~from:0 cap ~op:"get" []));
      check_bool "active again" true (Cluster.is_active cl cap))

let test_reincarnation_handler_runs () =
  let witnessed = ref 0 in
  let tm =
    Typemgr.make_exn ~name:"phoenix"
      ~reincarnate:(fun ctx ->
        incr witnessed;
        ctx.compute (Time.ms 1))
      [
        Typemgr.operation "checkpoint" (fun ctx args ->
            let* () = no_args args in
            let* () = ctx.checkpoint () in
            reply_unit);
        Typemgr.operation "crash" (fun ctx args ->
            let* () = no_args args in
            ctx.crash ();
            reply_unit);
        Typemgr.operation "ping" ~mutates:false (fun _ args ->
            let* () = no_args args in
            reply_unit);
      ]
  in
  with_cluster ~types:[ tm ] (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"phoenix" Value.Unit)
      in
      ignore (ok_or_fail "ckpt" (Cluster.invoke cl ~from:0 cap ~op:"checkpoint" []));
      check_int "not yet" 0 !witnessed;
      ignore (Cluster.invoke cl ~from:0 cap ~op:"crash" [] : Api.invoke_result);
      ignore (ok_or_fail "ping" (Cluster.invoke cl ~from:0 cap ~op:"ping" []));
      check_int "handler ran exactly once" 1 !witnessed)

let test_node_crash_and_restart () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      ignore (ok_or_fail "add" (Cluster.invoke cl ~from:1 cap ~op:"add" [ Value.Int 9 ]));
      ignore (ok_or_fail "ckpt" (Cluster.invoke cl ~from:1 cap ~op:"checkpoint" []));
      Cluster.crash_node cl 0;
      check_bool "node down" false (Cluster.node_up cl 0);
      (* Node 1 cached a hint to node 0 from the earlier invocations, so
         the request vanishes into the dead node and times out. *)
      expect_error "unreachable" Error.Timeout
        (Cluster.invoke cl ~from:1 ~timeout:(Time.ms 100) cap ~op:"get" []);
      Cluster.restart_node cl 0;
      check_int "recovered from disk" 9
        (int_result "get" (Cluster.invoke cl ~from:1 cap ~op:"get" []));
      check_bool "reincarnated on node 0" true
        (Cluster.where_is cl cap = Some 0))

let test_remote_checksite_survives_home_crash () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      ignore
        (ok_or_fail "set checksite"
           (Cluster.invoke cl ~from:0 cap ~op:"set_reliability_remote"
              [ Value.Int 2 ]));
      ignore (ok_or_fail "add" (Cluster.invoke cl ~from:0 cap ~op:"add" [ Value.Int 5 ]));
      ignore (ok_or_fail "ckpt" (Cluster.invoke cl ~from:0 cap ~op:"checkpoint" []));
      check_bool "snapshot on node 2" true
        (List.mem 2 (Cluster.checkpoint_sites cl cap));
      (* Node 0 dies and never comes back. *)
      Cluster.crash_node cl 0;
      (* The object reincarnates at its checksite, node 2. *)
      check_int "value survives" 5
        (int_result "get" (Cluster.invoke cl ~from:1 cap ~op:"get" []));
      check_bool "now living at node 2" true
        (Cluster.where_is cl cap = Some 2))

let test_mirrored_checkpoint () =
  with_cluster ~n:4 (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      ignore
        (ok_or_fail "mirror"
           (Cluster.invoke cl ~from:0 cap ~op:"set_reliability_mirrored"
              [ Value.List [ Value.Int 1; Value.Int 2 ] ]));
      ignore (ok_or_fail "add" (Cluster.invoke cl ~from:0 cap ~op:"add" [ Value.Int 7 ]));
      ignore (ok_or_fail "ckpt" (Cluster.invoke cl ~from:0 cap ~op:"checkpoint" []));
      let sites = List.sort Int.compare (Cluster.checkpoint_sites cl cap) in
      Alcotest.(check (list int)) "mirrored at 1 and 2" [ 1; 2 ] sites;
      (* Either mirror can reincarnate the object. *)
      Cluster.crash_node cl 0;
      Cluster.crash_node cl 1;
      check_int "survives two failures" 7
        (int_result "get" (Cluster.invoke cl ~from:3 cap ~op:"get" [])))

let test_invocation_timeout () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      (* A 100ms CPU burn invoked with a 10ms budget times out. *)
      expect_error "timeout" Error.Timeout
        (Cluster.invoke cl ~from:1 ~timeout:(Time.ms 10) cap ~op:"burn"
           [ Value.Int 100_000 ]);
      (* A generous budget succeeds. *)
      ignore
        (ok_or_fail "slow but fine"
           (Cluster.invoke cl ~from:1 ~timeout:(Time.s 5) cap ~op:"burn"
              [ Value.Int 100_000 ])))

let test_timeout_during_node_outage () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      ignore (ok_or_fail "add" (Cluster.invoke cl ~from:1 cap ~op:"add" [ Value.Int 5 ]));
      ignore (ok_or_fail "save" (Cluster.invoke cl ~from:1 cap ~op:"checkpoint" []));
      (* Move the object's checkpoint home truth: it lives on node 0
         with a local snapshot; node 1 has a hint to node 0. *)
      Cluster.crash_node cl 0;
      (* The hint still points at node 0: the request vanishes and the
         timeout fires — and the timeout invalidates the stale hint. *)
      expect_error "timed out against dead node" Error.Timeout
        (Cluster.invoke cl ~from:1 ~timeout:(Time.ms 50) cap ~op:"get" []);
      (* After the node returns, the very next invocation re-locates
         (no stale-hint black hole) and reincarnates the object. *)
      Cluster.restart_node cl 0;
      check_int "fresh locate finds it" 5
        (int_result "get" (Cluster.invoke cl ~from:1 cap ~op:"get" [])))

(* ------------------------------------------------------------------ *)
(* Mobility *)

let test_external_move () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      ignore (ok_or_fail "warm value" (Cluster.invoke cl ~from:0 cap ~op:"add" [ Value.Int 4 ]));
      ignore (ok_or_fail "move" (Cluster.move cl cap ~to_node:2));
      check_bool "moved" true (Cluster.where_is cl cap = Some 2);
      (* State travelled with the object. *)
      check_int "state intact" 4
        (int_result "get" (Cluster.invoke cl ~from:2 cap ~op:"get" []));
      (* Invocation through the old location still works (forwarding),
         and repairs the caller's hint. *)
      check_int "reachable from elsewhere" 5
        (int_result "incr" (Cluster.invoke cl ~from:1 cap ~op:"incr" [])))

let test_self_move () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      let r = Cluster.invoke cl ~from:0 cap ~op:"move_self" [ Value.Int 1 ] in
      check_int "handler finished on target node" 1 (int_result "move" r);
      check_bool "object now on node 1" true (Cluster.where_is cl cap = Some 1))

let test_move_to_full_node_refused () =
  (* Target node has almost no memory: the move must be refused and the
     object must keep running at the source. *)
  let tiny =
    {
      (Eden_hw.Machine.default_config ~name:"tiny") with
      Eden_hw.Machine.memory_bytes = 2_000;
    }
  in
  let configs =
    [
      Eden_hw.Machine.default_config ~name:"n0";
      tiny;
    ]
  in
  let cl = Cluster.create ~configs () in
  Cluster.register_type cl counter_type;
  let outcome = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let cap = new_counter cl ~node:0 1 in
        let r = Cluster.move cl cap ~to_node:1 in
        outcome := Some (r, Cluster.where_is cl cap))
  in
  Cluster.run cl;
  match !outcome with
  | Some (Error Error.Out_of_memory, Some 0) -> ()
  | Some (Error e, w) ->
    Alcotest.failf "unexpected %s at %s" (Error.to_string e)
      (match w with Some n -> string_of_int n | None -> "nowhere")
  | Some (Ok (), _) -> Alcotest.fail "move should have failed"
  | None -> Alcotest.fail "driver did not finish"

(* ------------------------------------------------------------------ *)
(* Freeze and replication *)

let test_freeze_blocks_mutation () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 10 in
      ignore (ok_or_fail "freeze" (Cluster.invoke cl ~from:0 cap ~op:"freeze_self" []));
      expect_error "mutating op refused" Error.Frozen_immutable
        (Cluster.invoke cl ~from:0 cap ~op:"incr" []);
      check_int "read still fine" 10
        (int_result "get" (Cluster.invoke cl ~from:0 cap ~op:"get" [])))

let test_replicate_requires_frozen () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      match Cluster.replicate cl cap ~to_node:1 with
      | Error (Error.Move_refused _) -> ()
      | Ok () -> Alcotest.fail "replicated a mutable object"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_replica_serves_locally () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 123 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      ignore (ok_or_fail "replicate" (Cluster.replicate cl cap ~to_node:2));
      Alcotest.(check (list int)) "replica installed" [ 2 ]
        (Cluster.replica_sites cl cap);
      let before = Cluster.stats_remote_invocations cl in
      check_int "replica answers" 123
        (int_result "get" (Cluster.invoke cl ~from:2 cap ~op:"get" []));
      check_int "no network used" before
        (Cluster.stats_remote_invocations cl))

(* ------------------------------------------------------------------ *)
(* Async invocation *)

let test_async_overlap () =
  with_cluster (fun cl ->
      let a = new_counter cl ~node:1 0 in
      let b = new_counter cl ~node:2 0 in
      let t0 = Engine.now (Cluster.engine cl) in
      let pa =
        Cluster.invoke_async cl ~from:0 a ~op:"burn" [ Value.Int 50_000 ]
      in
      let pb =
        Cluster.invoke_async cl ~from:0 b ~op:"burn" [ Value.Int 50_000 ]
      in
      (match (Promise.await pa, Promise.await pb) with
      | Some (Ok _), Some (Ok _) -> ()
      | _ -> Alcotest.fail "async burns failed");
      let elapsed =
        Time.to_ns (Time.diff (Engine.now (Cluster.engine cl)) t0)
      in
      (* Two 50ms burns on different nodes overlap: < 95ms total. *)
      check_bool "overlapped" true (elapsed < 95_000_000))

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_cluster_deterministic () =
  let fingerprint () =
    with_cluster ~seed:77L (fun cl ->
        let caps =
          List.init 6 (fun i -> new_counter cl ~node:(i mod 3) 0)
        in
        List.iteri
          (fun i cap ->
            ignore
              (Cluster.invoke cl ~from:((i + 1) mod 3) cap ~op:"add"
                 [ Value.Int i ]))
          caps;
        ( Time.to_ns (Engine.now (Cluster.engine cl)),
          Cluster.stats_invocations cl,
          Cluster.stats_remote_invocations cl ))
  in
  check_bool "identical runs" true (fingerprint () = fingerprint ())

let () =
  Alcotest.run "eden_kernel"
    [
      ( "basics",
        [
          Alcotest.test_case "create + invoke" `Quick
            test_create_and_invoke_local;
          Alcotest.test_case "unknown type" `Quick test_unknown_type;
          Alcotest.test_case "no such operation" `Quick test_no_such_operation;
          Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
          Alcotest.test_case "bogus name" `Quick test_invoke_bogus_name;
        ] );
      ( "rights",
        [
          Alcotest.test_case "restriction" `Quick test_rights_restriction;
          Alcotest.test_case "aux rights" `Quick test_aux_rights_required;
          Alcotest.test_case "move right" `Quick test_move_requires_right;
        ] );
      ( "remote",
        [
          Alcotest.test_case "remote invoke" `Quick test_remote_invoke;
          Alcotest.test_case "latency ordering" `Quick
            test_remote_latency_exceeds_local;
          Alcotest.test_case "capability passing" `Quick
            test_capability_passing;
          Alcotest.test_case "remote create" `Quick test_remote_create;
        ] );
      ( "classes",
        [
          Alcotest.test_case "limit serialises" `Quick
            test_class_limit_serialises;
          Alcotest.test_case "classes overlap" `Quick
            test_distinct_classes_concurrent;
          Alcotest.test_case "ports + behaviours" `Quick
            test_ports_and_behaviours;
          Alcotest.test_case "semaphore prevents lost updates" `Quick
            test_semaphore_no_lost_updates;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "crash loses unsaved object" `Quick
            test_crash_without_checkpoint_loses_object;
          Alcotest.test_case "checkpoint + crash + reincarnate" `Quick
            test_checkpoint_then_crash_reincarnates;
          Alcotest.test_case "reincarnation handler" `Quick
            test_reincarnation_handler_runs;
          Alcotest.test_case "node crash + restart" `Quick
            test_node_crash_and_restart;
          Alcotest.test_case "remote checksite" `Quick
            test_remote_checksite_survives_home_crash;
          Alcotest.test_case "mirrored checkpoints" `Quick
            test_mirrored_checkpoint;
          Alcotest.test_case "invocation timeout" `Quick
            test_invocation_timeout;
          Alcotest.test_case "timeout during outage" `Quick
            test_timeout_during_node_outage;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "external move" `Quick test_external_move;
          Alcotest.test_case "self move" `Quick test_self_move;
          Alcotest.test_case "move to full node" `Quick
            test_move_to_full_node_refused;
        ] );
      ( "replication",
        [
          Alcotest.test_case "freeze blocks mutation" `Quick
            test_freeze_blocks_mutation;
          Alcotest.test_case "replicate requires frozen" `Quick
            test_replicate_requires_frozen;
          Alcotest.test_case "replica serves locally" `Quick
            test_replica_serves_locally;
        ] );
      ( "async",
        [ Alcotest.test_case "overlap" `Quick test_async_overlap ] );
      ( "determinism",
        [ Alcotest.test_case "identical runs" `Quick test_cluster_deterministic ]
      );
    ]
