(* Tests for the node-machine hardware models. *)

open Eden_util
open Eden_sim
open Eden_hw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Costs *)

let test_costs_scale () =
  let c = Costs.default in
  let double = Costs.scale c 2.0 in
  check_int "request doubled"
    (2 * Time.to_ns c.Costs.invoke_request_cpu)
    (Time.to_ns double.Costs.invoke_request_cpu);
  check_int "per-byte doubled"
    (2 * Time.to_ns c.Costs.per_byte_copy)
    (Time.to_ns double.Costs.per_byte_copy);
  Alcotest.check_raises "bad factor" (Invalid_argument "Costs.scale")
    (fun () -> ignore (Costs.scale c 0.0))

let test_copy_cost () =
  let c = Costs.default in
  check_int "zero bytes" 0 (Time.to_ns (Costs.copy_cost c ~bytes:0));
  check_int "1KB"
    (1024 * Time.to_ns c.Costs.per_byte_copy)
    (Time.to_ns (Costs.copy_cost c ~bytes:1024));
  Alcotest.check_raises "negative"
    (Invalid_argument "Costs.copy_cost: negative size") (fun () ->
      ignore (Costs.copy_cost c ~bytes:(-1)))

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_accounting () =
  let m = Memory.create ~bytes:1_000 in
  check_int "capacity" 1_000 (Memory.capacity m);
  check_bool "reserve ok" true (Memory.reserve m 600 = Ok ());
  check_int "in use" 600 (Memory.in_use m);
  check_int "available" 400 (Memory.available m);
  check_bool "over-reserve fails" true
    (Memory.reserve m 500 = Error `Out_of_memory);
  check_int "failed reserve claims nothing" 600 (Memory.in_use m);
  Memory.release m 200;
  check_int "after release" 400 (Memory.in_use m);
  check_bool "fits now" true (Memory.reserve m 500 = Ok ());
  check_int "peak tracks high water" 900 (Memory.peak m)

let test_memory_errors () =
  let m = Memory.create ~bytes:100 in
  Alcotest.check_raises "negative reserve"
    (Invalid_argument "Memory.reserve: negative size") (fun () ->
      ignore (Memory.reserve m (-1)));
  Alcotest.check_raises "over-release"
    (Invalid_argument "Memory.release: more than in use") (fun () ->
      Memory.release m 1);
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Memory.create: capacity must be positive") (fun () ->
      ignore (Memory.create ~bytes:0))

(* ------------------------------------------------------------------ *)
(* Cpu *)

let test_cpu_parallelism () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~gdps:2 ~name:"cpu" in
  for _ = 1 to 6 do
    ignore (Engine.spawn eng (fun () -> Cpu.consume cpu (Time.ms 10)))
  done;
  Engine.run eng;
  (* 6 jobs of 10ms on 2 processors: 30ms makespan. *)
  check_int "makespan" 30_000_000 (Time.to_ns (Engine.now eng));
  check_int "jobs" 6 (Cpu.jobs_completed cpu);
  Alcotest.(check (float 1e-9))
    "fully utilised" 1.0
    (Cpu.utilisation cpu ~over:(Engine.now eng))

let test_cpu_zero_demand () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~gdps:1 ~name:"cpu" in
  let _ =
    Engine.spawn eng (fun () ->
        Cpu.consume cpu Time.zero;
        Cpu.consume cpu Time.zero)
  in
  Engine.run eng;
  check_int "no time passes" 0 (Time.to_ns (Engine.now eng));
  check_int "no jobs counted" 0 (Cpu.jobs_completed cpu)

(* ------------------------------------------------------------------ *)
(* Disk *)

let test_disk_access_time () =
  let eng = Engine.create () in
  let d = Disk.create eng ~profile:Disk.small_profile ~name:"d" in
  (* seek 30ms + half rotation 8ms + 1KB at 500KB/s = 2.048ms *)
  check_int "1KB access" 40_048_000
    (Time.to_ns (Disk.access_time d ~bytes:1_024));
  check_int "0B access" 38_000_000 (Time.to_ns (Disk.access_time d ~bytes:0))

let test_disk_serialises () =
  let eng = Engine.create () in
  let d = Disk.create eng ~profile:Disk.small_profile ~name:"d" in
  for _ = 1 to 3 do
    ignore (Engine.spawn eng (fun () -> Disk.write d ~bytes:1_024))
  done;
  Engine.run eng;
  (* One arm: three 40.048ms accesses serialise. *)
  check_int "makespan" (3 * 40_048_000) (Time.to_ns (Engine.now eng));
  check_int "writes" 3 (Disk.writes d);
  check_int "bytes" (3 * 1_024) (Disk.bytes_written d);
  check_int "no reads" 0 (Disk.reads d)

let test_disk_counters () =
  let eng = Engine.create () in
  let d = Disk.create eng ~profile:Disk.server_profile ~name:"d" in
  let _ =
    Engine.spawn eng (fun () ->
        Disk.read d ~bytes:4_096;
        Disk.write d ~bytes:8_192)
  in
  Engine.run eng;
  check_int "reads" 1 (Disk.reads d);
  check_int "read bytes" 4_096 (Disk.bytes_read d);
  check_int "write bytes" 8_192 (Disk.bytes_written d)

(* ------------------------------------------------------------------ *)
(* Machine *)

let test_machine_configs () =
  let d = Machine.default_config ~name:"n" in
  check_int "default gdps" 2 d.Machine.gdps;
  check_int "default memory" 1_000_000 d.Machine.memory_bytes;
  let u = Machine.upgraded_config ~name:"n" in
  check_int "upgraded gdps" 4 u.Machine.gdps;
  check_int "upgraded memory" 2_500_000 u.Machine.memory_bytes;
  let f = Machine.file_server_config ~name:"n" in
  check_int "server disk" 300_000_000
    f.Machine.disk_profile.Disk.capacity_bytes

let test_machine_composition () =
  let eng = Engine.create () in
  let m = Machine.create eng (Machine.default_config ~name:"node7") in
  Alcotest.(check string) "name" "node7" (Machine.name m);
  check_int "cpu pool size" 2 (Cpu.gdps (Machine.cpu m));
  check_int "memory budget" 1_000_000 (Memory.capacity (Machine.memory m));
  Alcotest.(check string) "disk named" "node7.disk" (Disk.name (Machine.disk m))

let prop_memory_reserve_release_balances =
  QCheck.Test.make ~name:"memory reserve/release balances" ~count:200
    QCheck.(list (int_range 1 100))
    (fun sizes ->
      let m = Memory.create ~bytes:1_000_000 in
      let reserved =
        List.filter (fun s -> Memory.reserve m s = Ok ()) sizes
      in
      List.iter (Memory.release m) reserved;
      Memory.in_use m = 0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "eden_hw"
    [
      ( "costs",
        [
          Alcotest.test_case "scale" `Quick test_costs_scale;
          Alcotest.test_case "copy cost" `Quick test_copy_cost;
        ] );
      ( "memory",
        [
          Alcotest.test_case "accounting" `Quick test_memory_accounting;
          Alcotest.test_case "errors" `Quick test_memory_errors;
          qt prop_memory_reserve_release_balances;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "parallelism" `Quick test_cpu_parallelism;
          Alcotest.test_case "zero demand" `Quick test_cpu_zero_demand;
        ] );
      ( "disk",
        [
          Alcotest.test_case "access time" `Quick test_disk_access_time;
          Alcotest.test_case "serialises" `Quick test_disk_serialises;
          Alcotest.test_case "counters" `Quick test_disk_counters;
        ] );
      ( "machine",
        [
          Alcotest.test_case "configs" `Quick test_machine_configs;
          Alcotest.test_case "composition" `Quick test_machine_composition;
        ] );
    ]
