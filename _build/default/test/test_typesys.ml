(* Tests for the abstract type hierarchy and the object-editor display
   attribute machinery. *)

open Eden_kernel
open Eden_typesys
open Api

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* A small hierarchy:
     described (root: describe)
       counter-like (get/incr, display=counter)
         resettable  (reset, overrides describe)            *)
let build () =
  let h = Hierarchy.create () in
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"described"
       ~attributes:[ ("display", Value.Str "plain") ]
       [
         Typemgr.operation "describe" ~mutates:false (fun ctx args ->
             let* () = no_args args in
             reply [ Value.Str "an object" ]
             |> fun r ->
             ignore ctx;
             r);
       ]);
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"counterlike" ~parent:"described"
       ~attributes:[ ("display", Value.Str "counter") ]
       [
         Typemgr.operation "get" ~mutates:false (fun ctx args ->
             let* () = no_args args in
             reply [ ctx.get_repr () ]);
         Typemgr.operation "incr" (fun ctx args ->
             let* () = no_args args in
             let* n = int_arg (ctx.get_repr ()) in
             let* () = ctx.set_repr (Value.Int (n + 1)) in
             reply [ Value.Int (n + 1) ]);
       ]);
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"resettable" ~parent:"counterlike"
       [
         Typemgr.operation "reset" (fun ctx args ->
             let* () = no_args args in
             let* () = ctx.set_repr (Value.Int 0) in
             reply_unit);
         Typemgr.operation "describe" ~mutates:false (fun ctx args ->
             let* () = no_args args in
             ignore ctx;
             reply [ Value.Str "a resettable counter" ]);
       ]);
  h

let test_subtype_relation () =
  let h = build () in
  check_bool "reflexive" true
    (Hierarchy.is_subtype h ~sub:"described" ~super:"described");
  check_bool "direct" true
    (Hierarchy.is_subtype h ~sub:"counterlike" ~super:"described");
  check_bool "transitive" true
    (Hierarchy.is_subtype h ~sub:"resettable" ~super:"described");
  check_bool "not reversed" false
    (Hierarchy.is_subtype h ~sub:"described" ~super:"resettable");
  Alcotest.(check (list string))
    "ancestors" [ "counterlike"; "described" ]
    (Hierarchy.ancestors h "resettable")

let test_declare_errors () =
  let h = build () in
  (match Hierarchy.declare h (Hierarchy.decl ~name:"described" []) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate accepted");
  match Hierarchy.declare h (Hierarchy.decl ~name:"orphan" ~parent:"nope" []) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown parent accepted"

let test_attribute_inheritance () =
  let h = build () in
  (match Hierarchy.attribute h ~type_name:"resettable" "display" with
  | Some (Value.Str s) -> check_string "inherited display" "counter" s
  | _ -> Alcotest.fail "missing attribute");
  (match Hierarchy.attribute h ~type_name:"described" "display" with
  | Some (Value.Str s) -> check_string "own display" "plain" s
  | _ -> Alcotest.fail "missing attribute");
  check_bool "unknown key" true
    (Hierarchy.attribute h ~type_name:"resettable" "nope" = None)

let test_operation_inheritance () =
  let h = build () in
  let names = Hierarchy.operation_names h "resettable" in
  check_bool "own op" true (List.mem "reset" names);
  check_bool "inherited op" true (List.mem "incr" names);
  check_bool "inherited root op" true (List.mem "describe" names);
  check_int "no duplicates" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_compiled_type_runs () =
  let h = build () in
  let tm = Hierarchy.compile_exn h "resettable" in
  let cl = Cluster.default ~n_nodes:1 () in
  Cluster.register_type cl tm;
  let outcome = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        match
          Cluster.create_object cl ~node:0 ~type_name:"resettable"
            (Value.Int 5)
        with
        | Error e -> outcome := Some (Error e)
        | Ok cap ->
          let incr = Cluster.invoke cl ~from:0 cap ~op:"incr" [] in
          let desc = Cluster.invoke cl ~from:0 cap ~op:"describe" [] in
          let reset = Cluster.invoke cl ~from:0 cap ~op:"reset" [] in
          let final = Cluster.invoke cl ~from:0 cap ~op:"get" [] in
          outcome := Some (Ok (incr, desc, reset, final)))
  in
  Cluster.run cl;
  match !outcome with
  | Some (Ok (incr, desc, _, final)) ->
    check_bool "inherited incr works" true (incr = Ok [ Value.Int 6 ]);
    check_bool "override wins" true
      (desc = Ok [ Value.Str "a resettable counter" ]);
    check_bool "reset applied" true (final = Ok [ Value.Int 0 ])
  | Some (Error e) -> Alcotest.failf "create failed: %s" (Error.to_string e)
  | None -> Alcotest.fail "driver did not run"

let test_register_all () =
  let h = build () in
  let cl = Cluster.default ~n_nodes:1 () in
  (match Hierarchy.register_all h cl with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register_all: %s" e);
  check_bool "all registered" true
    (Cluster.find_type cl "described" <> None
    && Cluster.find_type cl "counterlike" <> None
    && Cluster.find_type cl "resettable" <> None)

let test_reincarnate_inherited () =
  (* A subtype without its own reincarnation handler inherits the
     nearest ancestor's. *)
  let fired = ref [] in
  let h = Hierarchy.create () in
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"base"
       ~reincarnate:(fun _ -> fired := "base" :: !fired)
       [
         Typemgr.operation "checkpoint" (fun ctx args ->
             let* () = no_args args in
             let* () = ctx.checkpoint () in
             reply_unit);
         Typemgr.operation "crash" (fun ctx args ->
             let* () = no_args args in
             ctx.crash ();
             reply_unit);
         Typemgr.operation "ping" ~mutates:false (fun _ args ->
             let* () = no_args args in
             reply_unit);
       ]);
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"child" ~parent:"base"
       [
         Typemgr.operation "extra" ~mutates:false (fun _ args ->
             let* () = no_args args in
             reply_unit);
       ]);
  let tm = Hierarchy.compile_exn h "child" in
  let cl = Cluster.default ~n_nodes:1 () in
  Cluster.register_type cl tm;
  let _ =
    Cluster.in_process cl (fun () ->
        match
          Cluster.create_object cl ~node:0 ~type_name:"child" Value.Unit
        with
        | Error e -> Alcotest.failf "create: %s" (Error.to_string e)
        | Ok cap ->
          ignore (Cluster.invoke cl ~from:0 cap ~op:"checkpoint" []);
          ignore (Cluster.invoke cl ~from:0 cap ~op:"crash" []);
          ignore (Cluster.invoke cl ~from:0 cap ~op:"ping" []))
  in
  Cluster.run cl;
  Alcotest.(check (list string))
    "inherited handler ran once" [ "base" ] !fired

let test_compile_with_explicit_classes_over_inherited_ops () =
  (* A subtype may regroup inherited operations into its own classes;
     compile must accept a partition that names them. *)
  let h = Hierarchy.create () in
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"parent"
       [
         Typemgr.operation "read" ~mutates:false (fun ctx args ->
             let* () = no_args args in
             reply [ ctx.get_repr () ]);
         Typemgr.operation "write" (fun ctx args ->
             let* v = arg1 args in
             let* () = ctx.set_repr v in
             reply_unit);
       ]);
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"kid" ~parent:"parent"
       ~classes:
         [
           {
             Eden_kernel.Opclass.class_name = "bulk";
             operations = [ "read"; "write"; "audit" ];
             limit = 4;
           };
         ]
       [
         Typemgr.operation "audit" ~mutates:false (fun _ args ->
             let* () = no_args args in
             reply_unit);
       ]);
  match Hierarchy.compile h "kid" with
  | Ok tm ->
    check_int "one explicit class" 1 (List.length (Typemgr.classes tm));
    check_bool "covers inherited ops" true
      (Typemgr.find_operation tm "write" <> None)
  | Error e -> Alcotest.failf "compile: %s" e

let test_deep_chain () =
  let h = Hierarchy.create () in
  let mk name parent ops =
    Hierarchy.declare_exn h
      (Hierarchy.decl ~name ?parent
         (List.map
            (fun op ->
              Typemgr.operation op ~mutates:false (fun _ args ->
                  let* () = no_args args in
                  reply [ Value.Str op ]))
            ops))
  in
  mk "l0" None [ "a" ];
  mk "l1" (Some "l0") [ "b" ];
  mk "l2" (Some "l1") [ "c" ];
  mk "l3" (Some "l2") [ "d"; "a" ] (* overrides a *);
  check_int "four levels of ops" 4
    (List.length (Hierarchy.operation_names h "l3"));
  check_bool "l3 <= l0" true (Hierarchy.is_subtype h ~sub:"l3" ~super:"l0");
  (* The override must win at dispatch. *)
  let tm = Hierarchy.compile_exn h "l3" in
  let cl = Cluster.default ~n_nodes:1 () in
  Cluster.register_type cl tm;
  let got = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        match Cluster.create_object cl ~node:0 ~type_name:"l3" Value.Unit with
        | Error _ -> ()
        | Ok cap -> got := Some (Cluster.invoke cl ~from:0 cap ~op:"a" []))
  in
  Cluster.run cl;
  check_bool "nearest definition wins" true
    (!got = Some (Ok [ Value.Str "a" ]))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_display_styles () =
  let h = build () in
  check_string "inherited style" "counter"
    (Display.style h ~type_name:"resettable");
  check_string "unknown type defaults" "plain"
    (Display.style h ~type_name:"mystery");
  let box =
    Display.render h ~type_name:"resettable" ~title:"visits" (Value.Int 12)
  in
  check_bool "counter layout" true (contains box "count: 12");
  check_bool "titled" true (contains box "visits : resettable [counter]");
  check_bool "bordered" true (contains box "+--")

let test_display_record_and_list () =
  let h = Hierarchy.create () in
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"rec"
       ~attributes:[ ("display", Value.Str "record") ]
       [ Typemgr.operation "noop" (fun _ args -> let* () = no_args args in reply_unit) ]);
  let box =
    Display.render h ~type_name:"rec" ~title:"user"
      (Value.List
         [
           Value.Pair (Value.Str "name", Value.Str "alice");
           Value.Pair (Value.Str "age", Value.Int 7);
         ])
  in
  check_bool "record fields" true
    (contains box "name = \"alice\"" && contains box "age = 7")

let () =
  Alcotest.run "eden_typesys"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "subtype relation" `Quick test_subtype_relation;
          Alcotest.test_case "declare errors" `Quick test_declare_errors;
          Alcotest.test_case "attribute inheritance" `Quick
            test_attribute_inheritance;
          Alcotest.test_case "operation inheritance" `Quick
            test_operation_inheritance;
          Alcotest.test_case "compiled type runs" `Quick
            test_compiled_type_runs;
          Alcotest.test_case "register all" `Quick test_register_all;
          Alcotest.test_case "reincarnate inherited" `Quick
            test_reincarnate_inherited;
          Alcotest.test_case "explicit classes over inherited" `Quick
            test_compile_with_explicit_classes_over_inherited_ops;
          Alcotest.test_case "deep chain" `Quick test_deep_chain;
        ] );
      ( "display",
        [
          Alcotest.test_case "styles" `Quick test_display_styles;
          Alcotest.test_case "record and list" `Quick
            test_display_record_and_list;
        ] );
    ]
