(* The object editor's "editing paradigm" (paper section 5): every
   object gets a syntactically structured visual representation, all
   interaction is editing operations on that representation, and the
   display code is an attribute inherited through the abstract type
   hierarchy.

   Run with: dune exec examples/object_editor.exe *)

open Eden_kernel
open Eden_typesys
open Api

(* The hierarchy: every editable object descends from "editable", which
   carries the default display attribute and a rename operation.
   Documents and task queues override the display style only. *)
let hierarchy () =
  let h = Hierarchy.create () in
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"editable"
       ~attributes:[ ("display", Value.Str "record") ]
       [
         Typemgr.operation "view" ~mutates:false (fun ctx args ->
             let* () = no_args args in
             reply [ ctx.get_repr () ]);
       ]);
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"document" ~parent:"editable"
       ~attributes:[ ("display", Value.Str "text") ]
       [
         Typemgr.operation "replace_text" (fun ctx args ->
             let* v = arg1 args in
             let* _s = str_arg v in
             let* () = ctx.set_repr v in
             reply_unit);
         Typemgr.operation "append_line" (fun ctx args ->
             let* v = arg1 args in
             let* line = str_arg v in
             let* old = str_arg (ctx.get_repr ()) in
             let* () = ctx.set_repr (Value.Str (old ^ "\n" ^ line)) in
             reply_unit);
       ]);
  Hierarchy.declare_exn h
    (Hierarchy.decl ~name:"queue" ~parent:"editable"
       ~attributes:[ ("display", Value.Str "list") ]
       [
         Typemgr.operation "push" (fun ctx args ->
             let* v = arg1 args in
             let* items =
               Value.to_list (ctx.get_repr ())
               |> Result.map_error (fun m -> Error.Bad_arguments m)
             in
             let* () = ctx.set_repr (Value.List (items @ [ v ])) in
             reply_unit);
         Typemgr.operation "pop" (fun ctx args ->
             let* () = no_args args in
             let* items =
               Value.to_list (ctx.get_repr ())
               |> Result.map_error (fun m -> Error.Bad_arguments m)
             in
             match items with
             | [] -> user_error "queue is empty"
             | x :: rest ->
               let* () = ctx.set_repr (Value.List rest) in
               reply [ x ]);
       ]);
  h

(* "Editing" an object = invoking an operation, then re-rendering its
   structured representation. *)
let edit cl h ~from cap ~type_name ~title ~op args =
  Printf.printf ">> edit %s: %s\n" title op;
  (match Cluster.invoke cl ~from cap ~op args with
  | Ok _ -> ()
  | Error e -> Printf.printf "   error: %s\n" (Error.to_string e));
  match Cluster.invoke cl ~from cap ~op:"view" [] with
  | Ok [ repr ] ->
    print_endline (Display.render h ~type_name ~title repr)
  | Ok _ | Error _ -> print_endline "   (unviewable)"

let () =
  let h = hierarchy () in
  let cl = Cluster.default ~n_nodes:3 () in
  (match Hierarchy.register_all h cl with
  | Ok () -> ()
  | Error e -> failwith e);
  let _ =
    Cluster.in_process cl (fun () ->
        let doc =
          match
            Cluster.create_object cl ~node:0 ~type_name:"document"
              (Value.Str "Eden design notes")
          with
          | Ok c -> c
          | Error e -> failwith (Error.to_string e)
        in
        let q =
          match
            Cluster.create_object cl ~node:1 ~type_name:"queue"
              (Value.List [])
          with
          | Ok c -> c
          | Error e -> failwith (Error.to_string e)
        in
        Printf.printf "display styles are inherited attributes:\n";
        Printf.printf "  document -> %s (own)\n"
          (Display.style h ~type_name:"document");
        Printf.printf "  queue    -> %s (own)\n"
          (Display.style h ~type_name:"queue");
        Printf.printf "  editable -> %s (root default)\n\n"
          (Display.style h ~type_name:"editable");
        edit cl h ~from:0 doc ~type_name:"document" ~title:"notes.txt"
          ~op:"append_line" [ Value.Str "objects are the unit of distribution" ];
        edit cl h ~from:2 doc ~type_name:"document" ~title:"notes.txt"
          ~op:"append_line" [ Value.Str "invocation looks like a procedure call" ];
        edit cl h ~from:0 q ~type_name:"queue" ~title:"todo"
          ~op:"push" [ Value.Str "build node machines" ];
        edit cl h ~from:0 q ~type_name:"queue" ~title:"todo"
          ~op:"push" [ Value.Str "write the kernel in Ada" ];
        edit cl h ~from:1 q ~type_name:"queue" ~title:"todo" ~op:"pop" [];
        (* The inherited "view" comes from the supertype: subtype
           instances respond to supertype operations. *)
        Printf.printf "subtype check: document <= editable? %b\n"
          (Hierarchy.is_subtype h ~sub:"document" ~super:"editable"))
  in
  Cluster.run cl;
  print_endline "object editor demo complete"
