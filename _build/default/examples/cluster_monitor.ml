(* A cluster monitor built on two paper features: node objects ("a node
   is an object", sec. 4.3) polled as heartbeats, and a gateway to a
   foreign machine (sec. 2) that the monitor uses as a line printer for
   its reports.

   Run with: dune exec examples/cluster_monitor.exe *)

open Eden_util
open Eden_sim
open Eden_kernel

let nodes = 5

let () =
  let cl = Cluster.default ~n_nodes:nodes () in
  let eng = Cluster.engine cl in
  (* The department line printer sits behind node 4's serial line. *)
  let printer = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        match
          Eden_workload.Gateway.install cl ~node:4 ~name:"lineprinter"
            ~service:(fun args ->
              (match args with
              | [ Value.Str line ] -> Printf.printf "%s\n" line
              | _ -> ());
              Ok [])
            ~round_trip:(Time.ms 120) ()
        with
        | Ok c -> printer := Some c
        | Error e -> failwith (Error.to_string e))
  in
  Cluster.run cl;
  let printer = Option.get !printer in

  (* The monitor process: poll every node object, print one status
     line per round through the gateway. *)
  let monitor_pid =
    Cluster.in_process cl ~name:"monitor" (fun () ->
        for round = 1 to 10 do
          Engine.delay (Time.ms 300);
          let cells =
            List.init nodes (fun i ->
                let target = Cluster.node_object cl i in
                match
                  Cluster.invoke cl ~from:0 ~timeout:(Time.ms 150) target
                    ~op:"info" []
                with
                | Ok [ Value.Int gdps; Value.Int _; Value.Int avail; Value.Int act ]
                  ->
                  Printf.sprintf "n%d UP(%dgdp,%dKfree,%dobj)" i gdps
                    (avail / 1000) act
                | Ok _ -> Printf.sprintf "n%d ???" i
                | Error _ -> Printf.sprintf "n%d DOWN" i)
          in
          let report =
            Printf.sprintf "[%8s] round %2d  %s"
              (Time.to_string (Engine.now eng))
              round
              (String.concat "  " cells)
          in
          match
            Cluster.invoke cl ~from:0 printer ~op:"request"
              [ Value.Str report ]
          with
          | Ok _ -> ()
          | Error e ->
            Printf.printf "(printer unavailable: %s)\n" (Error.to_string e)
        done)
  in
  ignore monitor_pid;
  (* Failure injection: node 2 dies during rounds 3-6. *)
  Engine.schedule eng ~after:(Time.ms 900) (fun () ->
      Cluster.crash_node cl 2);
  Engine.schedule eng ~after:(Time.ms 2000) (fun () ->
      Cluster.restart_node cl 2);
  Cluster.run cl;
  print_endline "cluster monitor demo complete"
