examples/object_editor.ml: Api Cluster Display Eden_kernel Eden_typesys Error Hierarchy Printf Result Typemgr Value
