examples/file_server.ml: Client Cluster Eden_efs Eden_hw Eden_kernel Eden_sim Eden_util Engine Error List Machine Option Printf Schema Time Txn Value
