examples/object_editor.mli:
