examples/quickstart.ml: Api Cluster Eden_kernel Eden_sim Eden_util Engine Error Format List Printf Result String Time Typemgr Value
