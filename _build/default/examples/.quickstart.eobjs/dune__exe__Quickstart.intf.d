examples/quickstart.mli:
