examples/mail_system.mli:
