examples/cluster_monitor.ml: Cluster Eden_kernel Eden_sim Eden_util Eden_workload Engine Error List Option Printf String Time Value
