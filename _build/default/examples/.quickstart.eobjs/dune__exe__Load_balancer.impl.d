examples/load_balancer.ml: Array Cluster Eden_kernel Eden_sim Eden_util Eden_workload Engine Error List Policy Printf Splitmix Stats Synthetic Time Value
