examples/mail_system.ml: Cluster Eden_kernel Eden_sim Eden_util Eden_workload Engine Error Format Mail Option Printf Stats Time Value
