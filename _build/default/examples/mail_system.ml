(* A multi-user mail system: the paper's "integration" scenario.
   Users on six node machines share mailboxes through capabilities and
   a registry object; a travelling user's mailbox migrates to follow
   her, and the system survives the registry node checkpointing and
   crashing.

   Run with: dune exec examples/mail_system.exe *)

open Eden_util
open Eden_sim
open Eden_kernel
open Eden_workload

let say cl fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "[%8s] %s\n"
        (Time.to_string (Engine.now (Cluster.engine cl)))
        s)
    fmt

let () =
  let cl = Cluster.default ~n_nodes:6 () in
  Mail.register_types cl;
  let setup = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        say cl "building mailboxes for 12 users across 6 nodes";
        match Mail.build cl ~registry_node:0 ~users_per_node:2 with
        | Ok s -> setup := Some s
        | Error e -> failwith (Error.to_string e))
  in
  Cluster.run cl;
  let setup = Option.get !setup in

  (* Phase 1: everybody mails everybody. *)
  say cl "phase 1: each user sends 8 messages to random colleagues";
  let r = Mail.run cl setup ~messages_per_user:8 ~think_mean_s:0.02 in
  Printf.printf
    "          sent=%d failures=%d delivered=%d  send latency: %s\n"
    r.Mail.sent r.Mail.send_failures r.Mail.fetched
    (Format.asprintf "%a" Stats.pp_summary r.Mail.send_latency);

  (* Phase 2: a user travels; her mailbox follows her node. *)
  let user, home, box =
    match setup.Mail.mailboxes with m :: _ -> m | [] -> assert false
  in
  say cl "phase 2: %s travels from node %d to node 5; the mailbox moves"
    user home;
  let _ =
    Cluster.in_process cl (fun () ->
        (match Cluster.move cl box ~to_node:5 with
        | Ok () -> say cl "mailbox migrated (its capability is unchanged)"
        | Error e -> say cl "move failed: %s" (Error.to_string e));
        (* Mail still arrives through the same capability. *)
        match
          Cluster.invoke cl ~from:2 box ~op:"deposit"
            [ Value.Str "u2.0"; Value.Str "welcome to node 5!" ]
        with
        | Ok _ -> (
          match Cluster.invoke cl ~from:5 box ~op:"count" [] with
          | Ok [ Value.Int n ] ->
            say cl "%s reads %d pending message(s) locally on node 5" user n
          | _ -> say cl "count failed")
        | Error e -> say cl "deposit failed: %s" (Error.to_string e))
  in
  Cluster.run cl;

  (* Phase 3: checkpoint the registry, crash its node, recover. *)
  say cl "phase 3: checkpoint registry, crash node 0, reach it again";
  let _ =
    Cluster.in_process cl (fun () ->
        match Cluster.checkpoint_of cl setup.Mail.registry with
        | Ok () -> say cl "registry checkpointed to disk"
        | Error e -> say cl "checkpoint failed: %s" (Error.to_string e))
  in
  Cluster.run cl;
  Cluster.crash_node cl 0;
  say cl "node 0 is down (volatile state lost)";
  Cluster.restart_node cl 0;
  let _ =
    Cluster.in_process cl (fun () ->
        match
          Cluster.invoke cl ~from:3 setup.Mail.registry ~op:"lookup"
            [ Value.Str user ]
        with
        | Ok [ Value.Cap _ ] ->
          say cl "registry reincarnated from checkpoint; lookup succeeded"
        | Ok _ -> say cl "unexpected lookup reply"
        | Error e -> say cl "lookup failed: %s" (Error.to_string e))
  in
  Cluster.run cl;
  Printf.printf "\nmail system demo complete: %d invocations (%d remote)\n"
    (Cluster.stats_invocations cl)
    (Cluster.stats_remote_invocations cl)
