(* The Eden File System on a file-server node: transactions under both
   concurrency-control modes, version history, replication of immutable
   versions, and recovery after the server crashes.

   Run with: dune exec examples/file_server.exe *)

open Eden_util
open Eden_sim
open Eden_hw
open Eden_kernel
open Eden_efs

let say cl fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "[%8s] %s\n"
        (Time.to_string (Engine.now (Cluster.engine cl)))
        s)
    fmt

let get label = function
  | Ok v -> v
  | Error e -> failwith (label ^ ": " ^ Error.to_string e)

let () =
  (* Node 0 is the 300 MB file server of the 1981 plan; nodes 1-4 are
     workstations. *)
  let configs =
    Machine.file_server_config ~name:"fileserver"
    :: List.init 4 (fun i ->
           Machine.default_config ~name:(Printf.sprintf "ws%d" i))
  in
  let cl = Cluster.create ~configs () in
  Schema.register cl;
  let saved_root = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        say cl "creating / and /src on the file server";
        let root = get "root" (Client.make_root cl ~node:0) in
        let src = get "mkdir" (Client.mkdir cl ~from:1 ~dir:root ~name:"src" ~node:0 ()) in
        say cl "workstation 1 creates /src/main.ml (version 0)";
        let file =
          get "create"
            (Client.create_file cl ~from:1 ~dir:src ~name:"main.ml" ~node:0
               ~content:(Value.Str "let () = ()") ())
        in

        say cl "workstation 2 edits it under a locking transaction";
        let t = Txn.begin_txn cl ~from:2 ~mode:Txn.Locking in
        let old = get "read" (Txn.read_for_update t file) in
        (match old with
        | Value.Str s -> say cl "  read %S" s
        | _ -> ());
        ignore (Txn.write t file (Value.Str "let () = print_endline \"hi\""));
        (match Txn.commit ~durable:true t with
        | Txn.Committed -> say cl "  committed durably (version 1)"
        | Txn.Conflict -> say cl "  conflict!"
        | Txn.Failed e -> say cl "  failed: %s" (Error.to_string e));

        say cl "two optimistic editors race on the same file";
        let t3 = Txn.begin_txn cl ~from:3 ~mode:Txn.Optimistic in
        let t4 = Txn.begin_txn cl ~from:4 ~mode:Txn.Optimistic in
        ignore (Txn.read t3 file);
        ignore (Txn.read t4 file);
        ignore (Txn.write t3 file (Value.Str "(* ws3 version *)"));
        ignore (Txn.write t4 file (Value.Str "(* ws4 version *)"));
        (match Txn.commit t3 with
        | Txn.Committed -> say cl "  ws3 committed first"
        | _ -> say cl "  ws3 did not commit");
        (match Txn.commit t4 with
        | Txn.Conflict -> say cl "  ws4 conflicts and must retry: first committer wins"
        | Txn.Committed -> say cl "  ws4 committed (unexpected)"
        | Txn.Failed e -> say cl "  ws4 failed: %s" (Error.to_string e));

        say cl "history is immutable: every version is still readable";
        let n = get "count" (Client.version_count cl ~from:1 file) in
        for v = 0 to n - 1 do
          match Client.read_version_at cl ~from:1 file v with
          | Ok (Value.Str s) -> say cl "  version %d: %S" v s
          | Ok _ | Error _ -> say cl "  version %d: <unreadable>" v
        done;

        say cl "replicating the current version to every workstation";
        get "replicate"
          (Client.replicate_current_version cl ~from:1 file
             ~to_nodes:[ 1; 2; 3; 4 ]);
        let before = Cluster.stats_remote_invocations cl in
        (match Cluster.invoke cl ~from:4 file ~op:"current" [] with
        | Ok [ Value.Int _; Value.Cap vcap ] ->
          ignore (get "read" (Cluster.invoke cl ~from:4 vcap ~op:"read" []));
          let used = Cluster.stats_remote_invocations cl - before in
          say cl "  ws4 read the replica with %d extra remote invocation(s) for the content" (used - 1)
        | _ -> say cl "  current failed");

        say cl "checkpointing the directory tree, file and versions for durability";
        ignore (get "ckpt root" (Cluster.invoke cl ~from:0 root ~op:"checkpoint_now" []));
        ignore (get "ckpt src" (Cluster.invoke cl ~from:0 src ~op:"checkpoint_now" []));
        ignore (get "ckpt file" (Cluster.invoke cl ~from:0 file ~op:"checkpoint_now" []));
        let count = get "count" (Client.version_count cl ~from:0 file) in
        for v = 0 to count - 1 do
          match Cluster.invoke cl ~from:0 file ~op:"version_at" [ Value.Int v ] with
          | Ok [ Value.Cap vcap ] -> ignore (Cluster.checkpoint_of cl vcap)
          | Ok _ | Error _ -> ()
        done;
        saved_root := Some root)
  in
  Cluster.run cl;

  say cl "power failure on the file server!";
  Cluster.crash_node cl 0;
  Cluster.restart_node cl 0;
  say cl "server restarted; resolving /src/main.ml again from workstation 2";
  let _ =
    Cluster.in_process cl (fun () ->
        (* Everything reincarnates from the server's disk on demand. *)
        let root = Option.get !saved_root in
        match Client.resolve cl ~from:2 ~root "src/main.ml" with
        | Ok file -> (
          match Client.read_file cl ~from:2 file with
          | Ok (Value.Str s) -> say cl "recovered current version: %S" s
          | Ok _ -> say cl "recovered (non-string content)"
          | Error e -> say cl "read failed: %s" (Error.to_string e))
        | Error e -> say cl "resolve failed: %s" (Error.to_string e))
  in
  Cluster.run cl;
  Printf.printf "\nfile server demo complete: %d invocations (%d remote)\n"
    (Cluster.stats_invocations cl)
    (Cluster.stats_remote_invocations cl)
