(* Quickstart: a five-node Eden, one user-defined type, and the whole
   kernel surface in one sitting — location-independent invocation,
   checkpointing, crash, reincarnation and mobility.

   Run with: dune exec examples/quickstart.exe *)

open Eden_util
open Eden_sim
open Eden_kernel
open Api

let say cl fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "[%8s] %s\n"
        (Time.to_string (Engine.now (Cluster.engine cl)))
        s)
    fmt

(* An Eden type: a guestbook that remembers who visited.  Note the
   two-level view: the type programmer deals with representation,
   checkpointing and crashing; users of the capability just invoke. *)
let guestbook_type =
  Typemgr.make_exn ~name:"guestbook"
    [
      Typemgr.operation "sign" (fun ctx args ->
          let* v = arg1 args in
          let* visitor = str_arg v in
          let* entries =
            Value.to_list (ctx.get_repr ())
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let* () = ctx.set_repr (Value.List (Value.Str visitor :: entries)) in
          reply [ Value.Int (List.length entries + 1) ]);
      Typemgr.operation "signatures" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
      Typemgr.operation "save" (fun ctx args ->
          let* () = no_args args in
          let* () = ctx.checkpoint () in
          reply_unit);
      Typemgr.operation "fail" (fun ctx args ->
          let* () = no_args args in
          ctx.crash ();
          reply_unit);
    ]

let show label = function
  | Ok vs ->
    Printf.printf "          %s -> %s\n" label
      (String.concat "; " (List.map (Format.asprintf "%a" Value.pp) vs))
  | Error e -> Printf.printf "          %s -> error: %s\n" label (Error.to_string e)

let () =
  (* Five node machines on one Ethernet, like the 1981 prototype plan. *)
  let cl = Cluster.default ~n_nodes:5 () in
  Cluster.register_type cl guestbook_type;
  let _ =
    Cluster.in_process cl (fun () ->
        say cl "creating a guestbook object on node 0";
        let cap =
          match
            Cluster.create_object cl ~node:0 ~type_name:"guestbook"
              (Value.List [])
          with
          | Ok c -> c
          | Error e -> failwith (Error.to_string e)
        in
        say cl "local invocation from node 0";
        show "sign(alice)" (Cluster.invoke cl ~from:0 cap ~op:"sign" [ Value.Str "alice" ]);
        say cl "remote invocations: the same capability works from any node";
        show "sign(bob) from node 3"
          (Cluster.invoke cl ~from:3 cap ~op:"sign" [ Value.Str "bob" ]);
        show "sign(carol) from node 4"
          (Cluster.invoke cl ~from:4 cap ~op:"sign" [ Value.Str "carol" ]);
        say cl "checkpointing the long-term state to disk";
        show "save" (Cluster.invoke cl ~from:0 cap ~op:"save" []);
        say cl "one more signature that will NOT survive (not checkpointed)";
        show "sign(mallory)"
          (Cluster.invoke cl ~from:1 cap ~op:"sign" [ Value.Str "mallory" ]);
        say cl "the object crashes itself (simulated failure)";
        show "fail" (Cluster.invoke cl ~from:0 cap ~op:"fail" []);
        say cl "next invocation reincarnates it from the checkpoint";
        show "signatures" (Cluster.invoke cl ~from:2 cap ~op:"signatures" []);
        say cl "moving the object to node 2 (callers never notice)";
        (match Cluster.move cl cap ~to_node:2 with
        | Ok () -> say cl "moved; invocations still work unchanged"
        | Error e -> say cl "move failed: %s" (Error.to_string e));
        show "sign(dave) from node 1"
          (Cluster.invoke cl ~from:1 cap ~op:"sign" [ Value.Str "dave" ]);
        (match Cluster.where_is cl cap with
        | Some n -> say cl "the guestbook now lives on node %d" n
        | None -> say cl "the guestbook is passive"))
  in
  Cluster.run cl;
  Printf.printf "\nquickstart complete: %d invocations (%d remote)\n"
    (Cluster.stats_invocations cl)
    (Cluster.stats_remote_invocations cl)
