(* A location-policy object at work: a skewed population of objects is
   spread across the cluster by a balancer using the kernel's move
   primitive, and aggregate service latency improves.

   Run with: dune exec examples/load_balancer.exe *)

open Eden_util
open Eden_sim
open Eden_kernel
open Eden_workload

let print_loads cl caps label =
  let loads = Policy.managed_load cl ~managed:caps in
  Printf.printf "%s:" label;
  List.iter (fun (n, c) -> Printf.printf "  node%d=%d" n c) loads;
  print_newline ()

let stress cl caps label =
  (* Every node fires a burst of invocations at random managed
     objects; report the mean completion time. *)
  let eng = Cluster.engine cl in
  let arr = Array.of_list caps in
  let lat = Stats.create () in
  let n = Cluster.node_count cl in
  for from = 0 to n - 1 do
    let rng = Engine.fork_rng eng in
    ignore
      (Cluster.in_process cl (fun () ->
           for _ = 1 to 20 do
             let cap = arr.(Splitmix.int rng (Array.length arr)) in
             let t0 = Engine.now eng in
             match
               Cluster.invoke cl ~from cap ~op:"work"
                 [ Value.Blob 64; Value.Int 3_000 ]
             with
             | Ok _ -> Stats.add_time lat (Time.diff (Engine.now eng) t0)
             | Error _ -> ()
           done))
  done;
  Cluster.run cl;
  Printf.printf "%s: mean service time %.2f ms over %d requests\n" label
    (1000.0 *. Stats.mean lat)
    (Stats.count lat)

let () =
  let cl = Cluster.default ~n_nodes:4 () in
  Cluster.register_type cl Synthetic.worker_type;
  let caps = ref [] in
  let _ =
    Cluster.in_process cl (fun () ->
        (* Sixteen objects, all piled onto node 0. *)
        for _ = 1 to 16 do
          match
            Cluster.create_object cl ~node:0 ~type_name:"synthetic_worker"
              Value.Unit
          with
          | Ok c -> caps := c :: !caps
          | Error e -> failwith (Error.to_string e)
        done)
  in
  Cluster.run cl;
  let caps = !caps in
  print_loads cl caps "before balancing";
  stress cl caps "skewed placement ";

  let moved = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        moved := Policy.balance_once cl ~managed:caps)
  in
  Cluster.run cl;
  Printf.printf "policy moved %d objects\n" !moved;
  print_loads cl caps "after balancing ";
  stress cl caps "balanced placement";
  print_endline "load balancer demo complete"
