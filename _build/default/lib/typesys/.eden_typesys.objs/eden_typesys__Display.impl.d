lib/typesys/display.ml: Eden_kernel Format Hierarchy List Printf Stdlib String Value
