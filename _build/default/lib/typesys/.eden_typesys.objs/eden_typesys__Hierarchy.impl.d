lib/typesys/hierarchy.ml: Api Cluster Eden_kernel Hashtbl List Opclass Option Printf String Typemgr Value
