lib/typesys/display.mli: Eden_kernel Hierarchy
