lib/typesys/templates.ml: Api Eden_kernel Eden_sim Error List Opclass Printf Result Rights Typemgr Value
