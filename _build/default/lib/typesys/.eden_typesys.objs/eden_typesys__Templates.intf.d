lib/typesys/templates.mli: Eden_kernel Typemgr
