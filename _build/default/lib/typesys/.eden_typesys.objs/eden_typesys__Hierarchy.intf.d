lib/typesys/hierarchy.mli: Eden_kernel
