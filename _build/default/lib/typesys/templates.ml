open Eden_kernel
open Api

(* ------------------------------------------------------------------ *)
(* Ready-made types *)

let register_type ~name =
  Typemgr.make_exn ~name
    [
      Typemgr.operation "read" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
      Typemgr.operation "write" ~required:[ Rights.Aux 0 ] (fun ctx args ->
          let* v = arg1 args in
          let* () = ctx.set_repr v in
          reply_unit);
    ]

let queue_repr ctx =
  Value.to_list (ctx.get_repr ())
  |> Result.map_error (fun m -> Error.Bad_arguments m)

let queue_type ~name =
  Typemgr.make_exn ~name
    ~classes:
      (Opclass.one_class ~name:"serial"
         ~operations:[ "enqueue"; "dequeue"; "peek"; "length" ]
         ~limit:1)
    [
      Typemgr.operation "enqueue" (fun ctx args ->
          let* v = arg1 args in
          let* items = queue_repr ctx in
          let* () = ctx.set_repr (Value.List (items @ [ v ])) in
          reply_unit);
      Typemgr.operation "dequeue" (fun ctx args ->
          let* () = no_args args in
          let* items = queue_repr ctx in
          match items with
          | [] -> user_error "queue is empty"
          | x :: rest ->
            let* () = ctx.set_repr (Value.List rest) in
            reply [ x ]);
      Typemgr.operation "peek" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let* items = queue_repr ctx in
          match items with
          | [] -> user_error "queue is empty"
          | x :: _ -> reply [ x ]);
      Typemgr.operation "length" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let* items = queue_repr ctx in
          reply [ Value.Int (List.length items) ]);
    ]

let kv_entries ctx =
  Value.to_list (ctx.get_repr ())
  |> Result.map_error (fun m -> Error.Bad_arguments m)

let kv_type ~name =
  Typemgr.make_exn ~name
    ~classes:
      (Opclass.one_class ~name:"serial"
         ~operations:[ "put"; "get"; "delete"; "keys"; "size" ]
         ~limit:1)
    [
      Typemgr.operation "put" (fun ctx args ->
          let* a, b = arg2 args in
          let* k = str_arg a in
          let* entries = kv_entries ctx in
          let others =
            List.filter
              (fun e ->
                match e with
                | Value.Pair (Value.Str k', _) -> k' <> k
                | _ -> true)
              entries
          in
          let* () =
            ctx.set_repr (Value.List (Value.Pair (Value.Str k, b) :: others))
          in
          reply_unit);
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* a = arg1 args in
          let* k = str_arg a in
          let* entries = kv_entries ctx in
          let found =
            List.find_map
              (fun e ->
                match e with
                | Value.Pair (Value.Str k', v) when k' = k -> Some v
                | _ -> None)
              entries
          in
          (match found with
          | Some v -> reply [ v ]
          | None -> user_error (Printf.sprintf "no key %S" k)));
      Typemgr.operation "delete" (fun ctx args ->
          let* a = arg1 args in
          let* k = str_arg a in
          let* entries = kv_entries ctx in
          let others =
            List.filter
              (fun e ->
                match e with
                | Value.Pair (Value.Str k', _) -> k' <> k
                | _ -> true)
              entries
          in
          let* () = ctx.set_repr (Value.List others) in
          reply_unit);
      Typemgr.operation "keys" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let* entries = kv_entries ctx in
          let ks =
            List.filter_map
              (fun e ->
                match e with
                | Value.Pair (Value.Str k, _) -> Some (Value.Str k)
                | _ -> None)
              entries
          in
          reply [ Value.List ks ]);
      Typemgr.operation "size" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let* entries = kv_entries ctx in
          reply [ Value.Int (List.length entries) ]);
    ]

(* ------------------------------------------------------------------ *)
(* Policy wrappers *)

(* Rebuild a type manager with every operation's handler transformed. *)
let map_handlers f tm =
  let ops =
    List.map
      (fun (op : Typemgr.operation) ->
        { op with Typemgr.op_handler = f op op.Typemgr.op_handler })
      (Typemgr.operations tm)
  in
  Typemgr.make_exn ~name:(Typemgr.name tm) ~classes:(Typemgr.classes tm)
    ~code_bytes:(Typemgr.code_bytes tm)
    ~short_term_bytes:(Typemgr.short_term_bytes tm)
    ?reincarnate:(Typemgr.reincarnate tm)
    ~behaviours:(Typemgr.behaviours tm) ops

let with_auto_checkpoint ~every tm =
  if every < 1 then invalid_arg "Templates.with_auto_checkpoint: every < 1";
  map_handlers
    (fun op handler ->
      if not op.Typemgr.mutates then handler
      else fun ctx args ->
        let result = handler ctx args in
        (match result with
        | Ok _ ->
          (* The mutation counter lives in a kernel port: short-term
             state, gone after a crash like all bookkeeping. *)
          let cell = ctx.port "template.ckpt_count" in
          let count =
            match Eden_sim.Mailbox.try_recv cell with
            | Some (Value.Int n) -> n + 1
            | Some _ | None -> 1
          in
          if count >= every then begin
            ignore (Eden_sim.Mailbox.try_send cell (Value.Int 0));
            match ctx.checkpoint () with
            | Ok () -> ctx.log "auto-checkpoint"
            | Error e ->
              ctx.log ("auto-checkpoint failed: " ^ Error.to_string e)
          end
          else ignore (Eden_sim.Mailbox.try_send cell (Value.Int count))
        | Error _ -> ());
        result)
    tm

let with_operation_log tm =
  map_handlers
    (fun op handler ->
      fun ctx args ->
       let result = handler ctx args in
       (match result with
       | Ok _ -> ctx.log (op.Typemgr.op_name ^ ": ok")
       | Error e ->
         ctx.log (op.Typemgr.op_name ^ ": " ^ Error.to_string e));
       result)
    tm
