(** The abstract type hierarchy (paper section 5).

    A system of abstract types layered on the kernel's concrete types:
    "one type may be declared as a subtype of another, so that the
    subtype inherits the operations of its supertype", along with
    inheritable attributes such as the display code used by the object
    editor.

    A hierarchy is a forest: each abstract type has at most one parent.
    {!compile} flattens an abstract type into a concrete
    {!Eden_kernel.Typemgr.t} — inherited operations are included unless
    overridden, nearest definition winning. *)

type t

type decl = {
  d_name : string;
  d_parent : string option;
  d_attributes : (string * Eden_kernel.Value.t) list;
      (** inheritable key/value attributes (e.g. display code) *)
  d_operations : Eden_kernel.Typemgr.operation list;
  d_classes : Eden_kernel.Opclass.spec list option;
      (** classes covering the type's own operations; inherited
          operations keep their inherited grouping *)
  d_behaviours : Eden_kernel.Typemgr.behaviour list;
  d_reincarnate : (Eden_kernel.Api.ctx -> unit) option;
  d_code_bytes : int option;
}

val decl :
  ?parent:string ->
  ?attributes:(string * Eden_kernel.Value.t) list ->
  ?classes:Eden_kernel.Opclass.spec list ->
  ?behaviours:Eden_kernel.Typemgr.behaviour list ->
  ?reincarnate:(Eden_kernel.Api.ctx -> unit) ->
  ?code_bytes:int ->
  name:string ->
  Eden_kernel.Typemgr.operation list ->
  decl

val create : unit -> t

val declare : t -> decl -> (unit, string) result
(** Add a type.  Fails on duplicate names, unknown parents, or if the
    declaration would create a cycle. *)

val declare_exn : t -> decl -> unit

val mem : t -> string -> bool
val parent : t -> string -> string option
(** Raises [Invalid_argument] on an unknown type. *)

val ancestors : t -> string -> string list
(** Proper ancestors, nearest first. *)

val is_subtype : t -> sub:string -> super:string -> bool
(** Reflexive and transitive. *)

val attribute : t -> type_name:string -> string -> Eden_kernel.Value.t option
(** Inherited attribute lookup: the nearest declaration wins. *)

val operation_names : t -> string -> string list
(** All operations the type responds to (own + inherited), own first,
    each name once. *)

val compile : t -> string -> (Eden_kernel.Typemgr.t, string) result
(** Flatten into a concrete type manager named after the abstract type.
    Inherited operations not covered by the subtype's class
    declarations are placed in per-operation singleton classes. *)

val compile_exn : t -> string -> Eden_kernel.Typemgr.t

val register_all : t -> Eden_kernel.Cluster.t -> (unit, string) result
(** Compile and register every declared type with the cluster. *)
