(** Standard object templates.

    "Many type programmers in Eden will not be concerned with these
    details, because language subsystems will provide standard object
    templates" (paper §4.1).  This module is that subsystem: ready-made
    type managers for common abstractions, and wrappers that graft a
    reliability or observability policy onto any existing type.

    All templates speak {!Eden_kernel.Value} for their payloads. *)

open Eden_kernel

(** {1 Ready-made types} *)

val register_type : name:string -> Typemgr.t
(** A mutable cell.  Operations:
    ["read"] [] -> [v]; ["write"] [v] -> [] (requires [Aux 0]). *)

val queue_type : name:string -> Typemgr.t
(** A FIFO queue (single invocation class, limit 1: operations are
    serialised).  Operations:
    ["enqueue"] [v] -> []; ["dequeue"] [] -> [v] (User_error when
    empty); ["peek"] [] -> [v]; ["length"] [] -> [Int]. *)

val kv_type : name:string -> Typemgr.t
(** A key-value store over string keys.  Operations:
    ["put"] [Str k; v] -> []; ["get"] [Str k] -> [v] (User_error when
    absent); ["delete"] [Str k] -> []; ["keys"] [] -> [List of Str];
    ["size"] [] -> [Int]. *)

(** {1 Policy wrappers} *)

val with_auto_checkpoint : every:int -> Typemgr.t -> Typemgr.t
(** Wrap every mutating operation so that after each [every]-th
    successful mutation the object checkpoints itself — the standard
    reliability template.  Requires [every >= 1].  The count is
    short-term state: it restarts at zero on reincarnation. *)

val with_operation_log : Typemgr.t -> Typemgr.t
(** Wrap every operation to emit an [App]-category trace record on
    completion (operation name and outcome) — the standard
    observability template. *)
