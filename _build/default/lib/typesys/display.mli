(** Structured visual representations for the object editor.

    The paper's "editing paradigm" gives every object a syntactically
    structured visual representation.  The hierarchy's inheritable
    ["display"] attribute selects a rendering style; subtypes inherit
    their supertype's style unless they override it. *)

val style : Hierarchy.t -> type_name:string -> string
(** The effective display style: the inherited ["display"] attribute,
    or ["plain"] if none is declared.  Styles understood by {!render}:
    ["plain"], ["record"], ["list"], ["text"], ["counter"]. *)

val render :
  Hierarchy.t -> type_name:string -> title:string -> Eden_kernel.Value.t ->
  string
(** Render an object's representation as a bordered text box. *)
