open Eden_kernel

type decl = {
  d_name : string;
  d_parent : string option;
  d_attributes : (string * Value.t) list;
  d_operations : Typemgr.operation list;
  d_classes : Opclass.spec list option;
  d_behaviours : Typemgr.behaviour list;
  d_reincarnate : (Api.ctx -> unit) option;
  d_code_bytes : int option;
}

let decl ?parent ?(attributes = []) ?classes ?behaviours ?reincarnate
    ?code_bytes ~name operations =
  {
    d_name = name;
    d_parent = parent;
    d_attributes = attributes;
    d_operations = operations;
    d_classes = classes;
    d_behaviours = Option.value ~default:[] behaviours;
    d_reincarnate = reincarnate;
    d_code_bytes = code_bytes;
  }

type t = { decls : (string, decl) Hashtbl.t }

let create () = { decls = Hashtbl.create 16 }
let mem h name = Hashtbl.mem h.decls name

let find h name =
  match Hashtbl.find_opt h.decls name with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Hierarchy: unknown type %S" name)

let declare h d =
  if d.d_name = "" then Error "empty type name"
  else if Hashtbl.mem h.decls d.d_name then
    Error (Printf.sprintf "type %S already declared" d.d_name)
  else
    match d.d_parent with
    | Some p when not (Hashtbl.mem h.decls p) ->
      Error (Printf.sprintf "unknown parent %S" p)
    | Some _ | None ->
      (* Parents must pre-exist and names are fresh, so no cycle can
         form; the check is structural. *)
      Hashtbl.replace h.decls d.d_name d;
      Ok ()

let declare_exn h d =
  match declare h d with
  | Ok () -> ()
  | Error e -> invalid_arg ("Hierarchy.declare_exn: " ^ e)

let parent h name = (find h name).d_parent

let ancestors h name =
  let rec walk acc n =
    match (find h n).d_parent with
    | None -> List.rev acc
    | Some p -> walk (p :: acc) p
  in
  walk [] name

let is_subtype h ~sub ~super =
  String.equal sub super || List.mem super (ancestors h sub)

let attribute h ~type_name key =
  let rec search n =
    let d = find h n in
    match List.assoc_opt key d.d_attributes with
    | Some v -> Some v
    | None -> ( match d.d_parent with None -> None | Some p -> search p)
  in
  search type_name

(* Own-first operation resolution: nearest declaration wins. *)
let resolved_operations h name =
  let seen = Hashtbl.create 16 in
  let rec collect acc n =
    let d = find h n in
    let fresh =
      List.filter
        (fun (op : Typemgr.operation) ->
          if Hashtbl.mem seen op.Typemgr.op_name then false
          else begin
            Hashtbl.replace seen op.Typemgr.op_name ();
            true
          end)
        d.d_operations
    in
    let acc = acc @ fresh in
    match d.d_parent with None -> acc | Some p -> collect acc p
  in
  collect [] name

let operation_names h name =
  List.map (fun (o : Typemgr.operation) -> o.Typemgr.op_name)
    (resolved_operations h name)

let compile h name =
  if not (mem h name) then Error (Printf.sprintf "unknown type %S" name)
  else begin
    let d = find h name in
    let ops = resolved_operations h name in
    let op_names =
      List.map (fun (o : Typemgr.operation) -> o.Typemgr.op_name) ops
    in
    let declared_classes = Option.value ~default:[] d.d_classes in
    let covered =
      List.concat_map (fun s -> s.Opclass.operations) declared_classes
    in
    let uncovered = List.filter (fun o -> not (List.mem o covered)) op_names in
    let extra =
      List.map
        (fun op ->
          { Opclass.class_name = "inherited:" ^ op; operations = [ op ];
            limit = 1 })
        uncovered
    in
    let reincarnate =
      match d.d_reincarnate with
      | Some r -> Some r
      | None ->
        (* Inherit the nearest ancestor's reincarnation handler. *)
        List.find_map
          (fun a -> (find h a).d_reincarnate)
          (ancestors h name)
    in
    Typemgr.make ~name ~classes:(declared_classes @ extra)
      ?code_bytes:d.d_code_bytes ?reincarnate ~behaviours:d.d_behaviours ops
  end

let compile_exn h name =
  match compile h name with
  | Ok tm -> tm
  | Error e -> invalid_arg ("Hierarchy.compile_exn: " ^ e)

let register_all h cl =
  Hashtbl.fold
    (fun name _ acc ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match compile h name with
        | Error e -> Error e
        | Ok tm ->
          Cluster.register_type cl tm;
          Ok ()))
    h.decls (Ok ())
