open Eden_kernel

let style h ~type_name =
  if not (Hierarchy.mem h type_name) then "plain"
  else
    match Hierarchy.attribute h ~type_name "display" with
    | Some (Value.Str s) -> s
    | Some _ | None -> "plain"

let value_line v = Format.asprintf "%a" Value.pp v

let body_lines style repr =
  match (style, repr) with
  | "counter", Value.Int n -> [ Printf.sprintf "count: %d" n ]
  | "text", Value.Str s -> String.split_on_char '\n' s
  | "list", Value.List items -> List.map value_line items
  | "record", Value.List fields ->
    List.map
      (fun field ->
        match field with
        | Value.Pair (Value.Str k, v) -> Printf.sprintf "%s = %s" k (value_line v)
        | other -> value_line other)
      fields
  | ("plain" | "counter" | "text" | "list" | "record"), v -> [ value_line v ]
  | _, v -> [ value_line v ]

let render h ~type_name ~title repr =
  let sty = style h ~type_name in
  let header = Printf.sprintf "%s : %s [%s]" title type_name sty in
  let lines = body_lines sty repr in
  let width =
    List.fold_left
      (fun w line -> Stdlib.max w (String.length line))
      (String.length header) lines
  in
  let border = "+" ^ String.make (width + 2) '-' ^ "+" in
  let pad line = Printf.sprintf "| %s%s |" line (String.make (width - String.length line) ' ') in
  String.concat "\n"
    ((border :: pad header :: border :: List.map pad lines) @ [ border ])
