type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Cap of Capability.t
  | List of t list
  | Pair of t * t
  | Blob of int

let rec size_bytes = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Str s -> 4 + String.length s
  | Cap _ -> 16
  | List vs -> List.fold_left (fun acc v -> acc + size_bytes v) 4 vs
  | Pair (a, b) -> 2 + size_bytes a + size_bytes b
  | Blob n -> if n < 0 then invalid_arg "Value.size_bytes: negative blob" else n

let list_size_bytes vs = List.fold_left (fun acc v -> acc + size_bytes v) 0 vs

let type_name = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Str _ -> "string"
  | Cap _ -> "capability"
  | List _ -> "list"
  | Pair _ -> "pair"
  | Blob _ -> "blob"

let wrong expected v =
  Error (Printf.sprintf "expected %s, got %s" expected (type_name v))

let to_int = function Int i -> Ok i | v -> wrong "int" v
let to_bool = function Bool b -> Ok b | v -> wrong "bool" v
let to_str = function Str s -> Ok s | v -> wrong "string" v
let to_cap = function Cap c -> Ok c | v -> wrong "capability" v
let to_list = function List l -> Ok l | v -> wrong "list" v
let to_pair = function Pair (a, b) -> Ok (a, b) | v -> wrong "pair" v

let rec caps = function
  | Unit | Bool _ | Int _ | Str _ | Blob _ -> []
  | Cap c -> [ c ]
  | List vs -> List.concat_map caps vs
  | Pair (a, b) -> caps a @ caps b

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Cap x, Cap y -> Capability.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | Blob x, Blob y -> Int.equal x y
  | (Unit | Bool _ | Int _ | Str _ | Cap _ | List _ | Pair _ | Blob _), _ ->
    false

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.fprintf ppf "%S" s
  | Cap c -> Capability.pp ppf c
  | List vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp)
      vs
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | Blob n -> Format.fprintf ppf "<blob %dB>" n
