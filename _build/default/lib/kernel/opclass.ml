type spec = { class_name : string; operations : string list; limit : int }

let validate specs ~operations =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_specs seen_names seen_ops = function
    | [] ->
      let missing =
        List.filter (fun op -> not (List.mem op seen_ops)) operations
      in
      (match missing with
      | [] -> Ok ()
      | op :: _ -> err "operation %S belongs to no invocation class" op)
    | s :: rest ->
      if s.limit < 1 then err "class %S has non-positive limit" s.class_name
      else if List.mem s.class_name seen_names then
        err "duplicate class name %S" s.class_name
      else if s.operations = [] then err "class %S is empty" s.class_name
      else begin
        let rec check_ops = function
          | [] -> check_specs (s.class_name :: seen_names) (s.operations @ seen_ops) rest
          | op :: ops ->
            if not (List.mem op operations) then
              err "class %S names unknown operation %S" s.class_name op
            else if List.mem op seen_ops then
              err "operation %S appears in more than one class" op
            else if List.mem op ops then
              err "operation %S repeated within class %S" op s.class_name
            else check_ops ops
        in
        check_ops s.operations
      end
  in
  check_specs [] [] specs

let class_of specs ~op =
  match List.find_opt (fun s -> List.mem op s.operations) specs with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Opclass.class_of: %S unclassified" op)

let singleton_classes ~operations ~limit =
  List.map
    (fun op -> { class_name = op; operations = [ op ]; limit })
    operations

let one_class ~name ~operations ~limit =
  [ { class_name = name; operations; limit } ]
