(** Invocation parameter and representation values.

    Eden invocations carry "data and/or capability parameters"; this
    type is the common currency for both, and also serves as the
    long-term representation of objects.  {!size_bytes} approximates
    the marshalled size, which drives the network and copying cost
    models. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Cap of Capability.t
  | List of t list
  | Pair of t * t
  | Blob of int  (** opaque bulk data, modelled by size only *)

val size_bytes : t -> int
(** Marshalled size: ints and booleans are words, strings and blobs
    their length, capabilities a fixed 16 bytes, containers the sum of
    their parts plus small framing. *)

val list_size_bytes : t list -> int

(** {2 Accessors} — return [Error] rather than raising so that type
    code can surface {!Error.Bad_arguments} to callers. *)

val to_int : t -> (int, string) result
val to_bool : t -> (bool, string) result
val to_str : t -> (string, string) result
val to_cap : t -> (Capability.t, string) result
val to_list : t -> (t list, string) result
val to_pair : t -> (t * t, string) result

val caps : t -> Capability.t list
(** Every capability reachable in the value, for parameter-passing
    accounting. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
