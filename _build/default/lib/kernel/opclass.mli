(** Invocation classes.

    "In creating a new type, the programmer divides the invocations
    into an exhaustive and mutually exclusive set of invocation
    classes, and specifies the number of concurrent processes that are
    allowed to be servicing each class."  A class with limit 1 gives
    mutual exclusion among its operations. *)

type spec = {
  class_name : string;
  operations : string list;  (** operation names in this class *)
  limit : int;  (** max concurrent invocation processes; >= 1 *)
}

val validate :
  spec list -> operations:string list -> (unit, string) result
(** Checks the partition: every operation of the type appears in
    exactly one class, no class is empty or names an unknown operation,
    limits are positive, and class names are distinct. *)

val class_of : spec list -> op:string -> spec
(** The class containing [op].  Raises [Invalid_argument] if absent
    (callers validate first). *)

val singleton_classes : operations:string list -> limit:int -> spec list
(** Convenience: one class per operation, all with the same limit. *)

val one_class : name:string -> operations:string list -> limit:int -> spec list
(** Convenience: a single class covering every operation. *)
