lib/kernel/typemgr.mli: Api Opclass Rights
