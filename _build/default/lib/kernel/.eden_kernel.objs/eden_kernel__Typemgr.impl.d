lib/kernel/typemgr.ml: Api List Opclass Printf Rights String
