lib/kernel/cluster.mli: Api Capability Eden_hw Eden_net Eden_sim Eden_util Error Transport Typemgr Value
