lib/kernel/message.mli: Api Capability Error Name Reliability Rights Value
