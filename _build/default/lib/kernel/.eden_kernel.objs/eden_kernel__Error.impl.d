lib/kernel/error.ml: Format String
