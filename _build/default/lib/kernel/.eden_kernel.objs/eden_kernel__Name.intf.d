lib/kernel/name.mli: Format Hashtbl
