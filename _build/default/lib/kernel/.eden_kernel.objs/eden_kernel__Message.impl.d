lib/kernel/message.ml: Api Capability Error Name Printf Reliability Rights String Value
