lib/kernel/capability.ml: Format Name Rights
