lib/kernel/opclass.ml: List Printf
