lib/kernel/value.mli: Capability Format
