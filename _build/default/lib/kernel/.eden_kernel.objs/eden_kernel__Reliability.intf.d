lib/kernel/reliability.mli: Format
