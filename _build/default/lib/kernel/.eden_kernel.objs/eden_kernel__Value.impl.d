lib/kernel/value.ml: Bool Capability Format Int List Printf String
