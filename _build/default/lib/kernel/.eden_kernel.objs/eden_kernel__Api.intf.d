lib/kernel/api.mli: Capability Eden_sim Eden_util Error Reliability Value
