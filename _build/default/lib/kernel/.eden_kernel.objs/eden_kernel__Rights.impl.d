lib/kernel/rights.ml: Format Int List Printf String
