lib/kernel/policy.mli: Capability Cluster Eden_sim Eden_util
