lib/kernel/rights.mli: Format
