lib/kernel/opclass.mli:
