lib/kernel/policy.ml: Array Cluster Eden_sim Engine Fun List
