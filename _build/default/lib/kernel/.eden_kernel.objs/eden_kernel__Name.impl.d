lib/kernel/name.ml: Format Hashtbl Int
