lib/kernel/transport.mli: Eden_net Eden_sim Eden_util Message
