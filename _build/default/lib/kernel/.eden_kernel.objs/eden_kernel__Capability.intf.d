lib/kernel/capability.mli: Format Name Rights
