lib/kernel/error.mli: Format
