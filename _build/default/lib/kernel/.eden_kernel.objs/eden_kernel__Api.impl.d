lib/kernel/api.ml: Capability Eden_sim Eden_util Error List Printf Reliability Result Value
