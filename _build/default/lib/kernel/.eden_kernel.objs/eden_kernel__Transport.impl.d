lib/kernel/transport.ml: Eden_net Internet Message
