lib/kernel/reliability.ml: Format Int List Printf String
