type t = { name : Name.t; rights : Rights.t }

let make name rights = { name; rights }
let name c = c.name
let rights c = c.rights
let restrict c r = { c with rights = Rights.inter c.rights r }
let permits c required = Rights.subset required c.rights
let equal a b = Name.equal a.name b.name && Rights.equal a.rights b.rights
let same_object a b = Name.equal a.name b.name
let pp ppf c = Format.fprintf ppf "cap(%a, %a)" Name.pp c.name Rights.pp c.rights
