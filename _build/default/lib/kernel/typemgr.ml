type operation = {
  op_name : string;
  required_rights : Rights.t;
  mutates : bool;
  op_handler : Api.handler;
}

type behaviour = { b_name : string; b_body : Api.ctx -> unit }

type t = {
  tname : string;
  ops : operation list;
  cls : Opclass.spec list;
  code : int;
  short_term : int;
  reinc : (Api.ctx -> unit) option;
  behs : behaviour list;
}

let make ~name ?classes ?(code_bytes = 16_384) ?(short_term_bytes = 4_096)
    ?reincarnate ?(behaviours = []) operations =
  if String.length name = 0 then Error "type name is empty"
  else if operations = [] then Error "type has no operations"
  else begin
    let op_names = List.map (fun o -> o.op_name) operations in
    let distinct = List.sort_uniq String.compare op_names in
    if List.length distinct <> List.length op_names then
      Error "duplicate operation names"
    else if code_bytes < 0 || short_term_bytes < 0 then
      Error "negative size"
    else begin
      let cls =
        match classes with
        | Some c -> c
        | None -> Opclass.singleton_classes ~operations:op_names ~limit:1
      in
      match Opclass.validate cls ~operations:op_names with
      | Error e -> Error e
      | Ok () ->
        Ok
          {
            tname = name;
            ops = operations;
            cls;
            code = code_bytes;
            short_term = short_term_bytes;
            reinc = reincarnate;
            behs = behaviours;
          }
    end
  end

let make_exn ~name ?classes ?code_bytes ?short_term_bytes ?reincarnate
    ?behaviours operations =
  match
    make ~name ?classes ?code_bytes ?short_term_bytes ?reincarnate ?behaviours
      operations
  with
  | Ok t -> t
  | Error e -> invalid_arg (Printf.sprintf "Typemgr.make_exn (%s): %s" name e)

let name t = t.tname
let operations t = t.ops
let classes t = t.cls
let code_bytes t = t.code
let short_term_bytes t = t.short_term
let reincarnate t = t.reinc
let behaviours t = t.behs

let find_operation t op =
  List.find_opt (fun o -> String.equal o.op_name op) t.ops

let operation ?(required = []) ?(mutates = true) op_name op_handler =
  {
    op_name;
    required_rights = Rights.of_list (Rights.Invoke :: required);
    mutates;
    op_handler;
  }
