(** Type managers.

    A type manager holds the code implementing every operation of a
    type, the invocation-class partition bounding concurrency inside
    its instances, the reincarnation condition handler, and the
    detached behaviours spawned on activation.  On a node, type code is
    shared by all local instances: the first activation of a type on a
    node pays the cost of loading its code segments. *)

type operation = {
  op_name : string;
  required_rights : Rights.t;
      (** the caller's capability must carry all of these *)
  mutates : bool;  (** refused with [Frozen_immutable] on frozen objects *)
  op_handler : Api.handler;
}

type behaviour = {
  b_name : string;
  b_body : Api.ctx -> unit;
      (** runs as a detached process for the life of the activation *)
}

type t

val make :
  name:string ->
  ?classes:Opclass.spec list ->
  ?code_bytes:int ->
  ?short_term_bytes:int ->
  ?reincarnate:(Api.ctx -> unit) ->
  ?behaviours:behaviour list ->
  operation list ->
  (t, string) result
(** Build a type manager.  Without [classes], every operation gets its
    own singleton class with limit 1 (serial execution, the safe
    default).  Fails if the class partition is invalid, the name or
    operation list is empty, or operation names collide. *)

val make_exn :
  name:string ->
  ?classes:Opclass.spec list ->
  ?code_bytes:int ->
  ?short_term_bytes:int ->
  ?reincarnate:(Api.ctx -> unit) ->
  ?behaviours:behaviour list ->
  operation list ->
  t
(** Like {!make} but raises [Invalid_argument]; for statically-known
    type definitions. *)

val name : t -> string
val operations : t -> operation list
val classes : t -> Opclass.spec list
val code_bytes : t -> int
val short_term_bytes : t -> int
val reincarnate : t -> (Api.ctx -> unit) option
val behaviours : t -> behaviour list
val find_operation : t -> string -> operation option

val operation :
  ?required:Rights.right list ->
  ?mutates:bool ->
  string ->
  Api.handler ->
  operation
(** Convenience constructor: [required] defaults to [[Invoke]] (it is
    added regardless), [mutates] to [true]. *)
