open Eden_kernel

let ( let* ) = Result.bind

let lift_conv r = Result.map_error (fun m -> Error.Bad_arguments m) r

let make_root cl ~node =
  Cluster.create_object cl ~node ~type_name:"efs_dir" (Value.List [])

let bind cl ~from ~dir ~name cap =
  let* _ =
    Cluster.invoke cl ~from dir ~op:"bind" [ Value.Str name; Value.Cap cap ]
  in
  Ok ()

let new_version cl ~from ~node content =
  ignore from;
  let* vcap = Cluster.create_object cl ~node ~type_name:"efs_version" content in
  let* () = Cluster.freeze cl vcap in
  Ok vcap

let mkdir cl ~from ~dir ~name ?node () =
  let target = Option.value ~default:from node in
  let* sub =
    Cluster.create_object cl ~node:target ~type_name:"efs_dir" (Value.List [])
  in
  let* () = bind cl ~from ~dir ~name sub in
  Ok sub

(* Append [vcap] as the next version, driving the file's own
   prepare/commit protocol as a single-file transaction. *)
let append_version cl ~from ~file vcap ~txn =
  let* r =
    Cluster.invoke cl ~from file ~op:"prepare"
      [ Value.Str txn; Value.Int (-1) ]
  in
  match r with
  | [ Value.Bool true ] ->
    let* _ =
      Cluster.invoke cl ~from file ~op:"commit_version"
        [ Value.Str txn; Value.Cap vcap ]
    in
    Ok ()
  | [ Value.Bool false ] ->
    Error (Error.User_error "file busy with another transaction")
  | _ -> Error (Error.User_error "unexpected prepare reply")

let create_file cl ~from ~dir ~name ?node ?content () =
  let target = Option.value ~default:from node in
  let* file =
    Cluster.create_object cl ~node:target ~type_name:"efs_file"
      Schema.empty_file_repr
  in
  let* () = bind cl ~from ~dir ~name file in
  match content with
  | None -> Ok file
  | Some c ->
    let* vcap = new_version cl ~from ~node:target c in
    let* () =
      append_version cl ~from ~file vcap
        ~txn:(Printf.sprintf "create:%s" (Name.to_string (Capability.name file)))
    in
    Ok file

let resolve cl ~from ~root path =
  let components = String.split_on_char '/' path in
  let components = List.filter (fun c -> c <> "") components in
  if components = [] then Error (Error.Bad_arguments "empty path")
  else
    List.fold_left
      (fun acc comp ->
        let* dir = acc in
        let* r = Cluster.invoke cl ~from dir ~op:"lookup" [ Value.Str comp ] in
        match r with
        | [ Value.Cap c ] -> Ok c
        | _ -> Error (Error.User_error "unexpected lookup reply"))
      (Ok root) components

let current cl ~from file =
  let* r = Cluster.invoke cl ~from file ~op:"current" [] in
  match r with
  | [ Value.Int vno; Value.Cap c ] -> Ok (vno, c)
  | _ -> Error (Error.User_error "unexpected current reply")

let read_version cl ~from vcap =
  let* r = Cluster.invoke cl ~from vcap ~op:"read" [] in
  match r with
  | [ content ] -> Ok content
  | _ -> Error (Error.User_error "unexpected read reply")

let read_file cl ~from file =
  let* _vno, vcap = current cl ~from file in
  read_version cl ~from vcap

let read_version_at cl ~from file vno =
  let* r = Cluster.invoke cl ~from file ~op:"version_at" [ Value.Int vno ] in
  match r with
  | [ Value.Cap vcap ] -> read_version cl ~from vcap
  | _ -> Error (Error.User_error "unexpected version_at reply")

let version_count cl ~from file =
  let* r = Cluster.invoke cl ~from file ~op:"version_count" [] in
  match r with
  | [ v ] -> lift_conv (Value.to_int v)
  | _ -> Error (Error.User_error "unexpected version_count reply")

let list_dir cl ~from dir =
  let* r = Cluster.invoke cl ~from dir ~op:"list" [] in
  match r with
  | [ Value.List names ] ->
    Ok
      (List.filter_map
         (fun v -> match v with Value.Str s -> Some s | _ -> None)
         names)
  | _ -> Error (Error.User_error "unexpected list reply")

let replicate_current_version cl ~from file ~to_nodes =
  let* _vno, vcap = current cl ~from file in
  List.fold_left
    (fun acc node ->
      let* () = acc in
      Cluster.replicate cl vcap ~to_node:node)
    (Ok ()) to_nodes

let make_durable cl ~from file ~mirrors =
  let sites = Value.List (List.map (fun n -> Value.Int n) mirrors) in
  let* _ = Cluster.invoke cl ~from file ~op:"set_checksites" [ sites ] in
  let* count = version_count cl ~from file in
  let rec each vno =
    if vno >= count then Ok ()
    else
      let* r =
        Cluster.invoke cl ~from file ~op:"version_at" [ Value.Int vno ]
      in
      match r with
      | [ Value.Cap vcap ] ->
        let* _ = Cluster.invoke cl ~from vcap ~op:"set_checksites" [ sites ] in
        each (vno + 1)
      | _ -> Error (Error.User_error "unexpected version_at reply")
  in
  each 0

(* A bound capability is a directory iff it answers "entries"; files
   answer with No_such_operation and are checkpointed with their
   version objects. *)
let rec checkpoint_tree cl ~from ~root =
  let* _ = Cluster.invoke cl ~from root ~op:"checkpoint_now" [] in
  let* r = Cluster.invoke cl ~from root ~op:"entries" [] in
  let* entries =
    match r with
    | [ Value.List entries ] -> Ok entries
    | _ -> Error (Error.User_error "unexpected entries reply")
  in
  List.fold_left
    (fun acc entry ->
      let* count = acc in
      match entry with
      | Value.Pair (Value.Str _, Value.Cap child) -> (
        match checkpoint_tree cl ~from ~root:child with
        | Ok sub -> Ok (count + sub)
        | Error (Error.No_such_operation _) ->
          (* A file: checkpoint it and each of its versions. *)
          let* _ = Cluster.invoke cl ~from child ~op:"checkpoint_now" [] in
          let* n = version_count cl ~from child in
          let rec save_versions vno saved =
            if vno >= n then Ok saved
            else
              let* r =
                Cluster.invoke cl ~from child ~op:"version_at"
                  [ Value.Int vno ]
              in
              match r with
              | [ Value.Cap vcap ] ->
                let* () = Cluster.checkpoint_of cl vcap in
                save_versions (vno + 1) (saved + 1)
              | _ -> Error (Error.User_error "unexpected version_at reply")
          in
          let* versions_saved = save_versions 0 0 in
          Ok (count + 1 + versions_saved)
        | Error e -> Error e)
      | _ -> Ok count)
    (Ok 1) entries

let delete_file cl ~from ~dir ~name =
  let* r = Cluster.invoke cl ~from dir ~op:"lookup" [ Value.Str name ] in
  let* file =
    match r with
    | [ Value.Cap c ] -> Ok c
    | _ -> Error (Error.User_error "unexpected lookup reply")
  in
  let* count = version_count cl ~from file in
  (* Collect version capabilities before the file goes away. *)
  let rec versions acc vno =
    if vno >= count then Ok (List.rev acc)
    else
      let* r =
        Cluster.invoke cl ~from file ~op:"version_at" [ Value.Int vno ]
      in
      match r with
      | [ Value.Cap vcap ] -> versions (vcap :: acc) (vno + 1)
      | _ -> Error (Error.User_error "unexpected version_at reply")
  in
  let* vcaps = versions [] 0 in
  let* _ = Cluster.invoke cl ~from dir ~op:"unbind" [ Value.Str name ] in
  let* () = Cluster.destroy cl file in
  List.fold_left
    (fun acc vcap ->
      let* () = acc in
      Cluster.destroy cl vcap)
    (Ok ()) vcaps
