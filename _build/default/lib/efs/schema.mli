(** The Eden File System's object types.

    EFS is built {e entirely} on kernel primitives, as the paper's
    software structure requires: files, versions and directories are
    ordinary Eden objects defined by these type managers.

    - [efs_version]: one immutable version of a file's contents.  The
      client freezes each version after creation, which makes versions
      replicable through the kernel's frozen-object machinery.
    - [efs_file]: an appendable chain of version capabilities with a
      current-version pointer, plus the concurrency-control surface
      (shared/exclusive locks for two-phase locking, prepare/commit/
      abort for optimistic validation and two-phase commit).
    - [efs_dir]: a name-to-capability mapping.

    Lock and prepared-transaction state is deliberately kept in
    kernel-supplied short-term facilities (semaphores and ports), never
    in the representation: a crash clears it, exactly as the paper's
    short-term/long-term split prescribes. *)

val version_type : Eden_kernel.Typemgr.t
(** Operations: ["read"] [] -> [content];
    ["size"] [] -> [Int bytes]. *)

val file_type : Eden_kernel.Typemgr.t
(** Operations:
    ["current"] [] -> [Int vno; Cap version] (error [User_error] when empty);
    ["version_at"] [Int vno] -> [Cap version];
    ["version_count"] [] -> [Int];
    ["prepare"] [Str txn; Int expected_vno] -> [Bool ok] — [expected_vno]
    of [-1] skips validation (two-phase locking mode);
    ["commit_version"] [Str txn; Cap version] -> [Int new_vno];
    ["abort_txn"] [Str txn] -> [];
    ["lock_shared"] [Int timeout_ms] -> [Bool granted];
    ["lock_exclusive"] [Int timeout_ms] -> [Bool granted];
    ["unlock_shared"] [] -> [];
    ["unlock_exclusive"] [] -> [];
    ["checkpoint_now"] [] -> []. *)

val dir_type : Eden_kernel.Typemgr.t
(** Operations:
    ["lookup"] [Str name] -> [Cap];
    ["bind"] [Str name; Cap c] -> [] (error if bound);
    ["rebind"] [Str name; Cap c] -> [];
    ["unbind"] [Str name] -> [];
    ["list"] [] -> [List of Str];
    ["entries"] [] -> [List of Pair(Str, Cap)];
    ["checkpoint_now"] [] -> []. *)

val empty_file_repr : Eden_kernel.Value.t
(** Initial representation for a fresh [efs_file]. *)

val register : Eden_kernel.Cluster.t -> unit
(** Register all three types with a cluster. *)
