(** EFS transactions.

    A transaction reads and writes whole files; commit installs one new
    immutable version per written file, atomically across files via
    two-phase commit over the files' prepare/commit operations.

    Concurrency control is encapsulated behind {!mode}, exactly as the
    paper promises ("concurrency control will be encapsulated to
    facilitate experimentation with alternate approaches"):

    - {!Locking}: strict two-phase locking.  Reads take shared locks,
      writes exclusive locks, all released after commit or abort.  Lock
      waits carry a timeout; a timeout aborts the transaction, which
      doubles as deadlock resolution.
    - {!Optimistic}: no locks.  Reads record the version seen; commit
      validates that every file read or written is still at the
      recorded version, and aborts on conflict.
    - {!Snapshot}: multiversion isolation, riding EFS's immutable
      version chains.  Reads pin the version current at first access
      and never invalidate the transaction; only the write set is
      validated at commit (first committer wins).  Cheaper than
      {!Optimistic} under read contention, but admits write skew —
      see the corresponding tests.

    All modes validate the observed version of written files at
    prepare time, so mixing modes over one file is still update-safe
    (first committer wins; the loser aborts). *)

open Eden_kernel

type mode = Locking | Optimistic | Snapshot

type t

type outcome = Committed | Conflict | Failed of Error.t

val begin_txn : Cluster.t -> from:int -> mode:mode -> t
val mode : t -> mode
val id : t -> string

val read : t -> Capability.t -> (Value.t, Error.t) result
(** Current contents of a file under this transaction's control.
    Reading a file twice returns the same version's contents. *)

val read_for_update : t -> Capability.t -> (Value.t, Error.t) result
(** Like {!read}, but in {!Locking} mode takes the exclusive lock up
    front.  Use for read-modify-write accesses: a plain {!read}
    followed by {!write} must release and re-take the lock, and the
    upgrade fails with an error if the file changed in the window. *)

val write : t -> Capability.t -> Value.t -> (unit, Error.t) result
(** Buffer new contents for a file (visible to {!read} within this
    transaction).  Installed only at {!commit}. *)

val commit :
  ?replicate_to:int list ->
  ?durable:bool ->
  t ->
  outcome
(** Two-phase commit.  [replicate_to] installs replicas of each new
    version; [durable] (default false) checkpoints each written file
    after commit.  After commit the transaction is finished. *)

val abort : t -> unit
(** Drop buffered writes, release locks.  Idempotent. *)

val lock_timeout_ms : int ref
(** Lock-wait budget for {!Locking} transactions (default 2000). *)
