open Eden_kernel

let ( let* ) = Result.bind

type mode = Locking | Optimistic | Snapshot

type entry = {
  e_file : Capability.t;
  mutable e_version : int;  (* current version seen at first access; -1 unknown *)
  mutable e_read_locked : bool;
  mutable e_write_locked : bool;
  mutable e_pending : Value.t option;
  mutable e_cached : Value.t option;
}

type state = Open | Finished

type t = {
  cl : Cluster.t;
  from : int;
  tmode : mode;
  tid : string;
  mutable entries : entry list;
  mutable st : state;
}

type outcome = Committed | Conflict | Failed of Error.t

let lock_timeout_ms = ref 2_000
let txn_counter = ref 0

let begin_txn cl ~from ~mode =
  incr txn_counter;
  {
    cl;
    from;
    tmode = mode;
    tid = Printf.sprintf "txn:%d:%d" from !txn_counter;
    entries = [];
    st = Open;
  }

let mode t = t.tmode
let id t = t.tid

let entry_for t file =
  match
    List.find_opt
      (fun e -> Capability.same_object e.e_file file)
      t.entries
  with
  | Some e -> e
  | None ->
    let e =
      {
        e_file = file;
        e_version = -1;
        e_read_locked = false;
        e_write_locked = false;
        e_pending = None;
        e_cached = None;
      }
    in
    t.entries <- e :: t.entries;
    e

let invoke t cap ~op args = Cluster.invoke t.cl ~from:t.from cap ~op args

let take_lock t e ~exclusive =
  let op = if exclusive then "lock_exclusive" else "lock_shared" in
  let* r = invoke t e.e_file ~op [ Value.Int !lock_timeout_ms ] in
  match r with
  | [ Value.Bool true ] ->
    if exclusive then e.e_write_locked <- true else e.e_read_locked <- true;
    Ok ()
  | [ Value.Bool false ] -> Error (Error.User_error "lock timeout")
  | _ -> Error (Error.User_error "unexpected lock reply")

let drop_locks t =
  List.iter
    (fun e ->
      if e.e_write_locked then begin
        e.e_write_locked <- false;
        ignore (invoke t e.e_file ~op:"unlock_exclusive" [])
      end;
      if e.e_read_locked then begin
        e.e_read_locked <- false;
        ignore (invoke t e.e_file ~op:"unlock_shared" [])
      end)
    t.entries

let current_of t e =
  let* r = invoke t e.e_file ~op:"current" [] in
  match r with
  | [ Value.Int vno; Value.Cap vcap ] -> Ok (vno, vcap)
  | _ -> Error (Error.User_error "unexpected current reply")

let fetch t e =
  let* vno, vcap = current_of t e in
  let* r = invoke t vcap ~op:"read" [] in
  match r with
  | [ content ] ->
    if e.e_version < 0 then e.e_version <- vno;
    e.e_cached <- Some content;
    Ok content
  | _ -> Error (Error.User_error "unexpected read reply")

let finished_error = Error.User_error "transaction already finished"

(* In Locking mode, make sure this transaction holds the exclusive lock
   on [e], upgrading a shared lock if necessary.  An upgrade opens a
   window in which another writer can slip in; that is detected by
   comparing the current version against the one this transaction
   observed, and reported as an upgrade conflict. *)
let ensure_exclusive t e =
  if e.e_write_locked then Ok ()
  else begin
    let upgraded = e.e_read_locked in
    if upgraded then begin
      e.e_read_locked <- false;
      ignore (invoke t e.e_file ~op:"unlock_shared" [])
    end;
    let* () = take_lock t e ~exclusive:true in
    match current_of t e with
    | Ok (vno, _) ->
      if upgraded && e.e_version >= 0 && vno <> e.e_version then
        Error
          (Error.User_error
             "upgrade conflict: file changed between read and write")
      else begin
        if e.e_version < 0 then e.e_version <- vno;
        Ok ()
      end
    | Error (Error.User_error _) -> Ok () (* empty file *)
    | Error err -> Error err
  end

let read_common t file ~exclusive =
  if t.st = Finished then Error finished_error
  else begin
    let e = entry_for t file in
    match e.e_pending with
    | Some v -> Ok v
    | None ->
      let* () =
        match t.tmode with
        | Optimistic | Snapshot -> Ok ()
        | Locking ->
          if exclusive then ensure_exclusive t e
          else if e.e_write_locked || e.e_read_locked then Ok ()
          else take_lock t e ~exclusive:false
      in
      (match e.e_cached with Some v -> Ok v | None -> fetch t e)
  end

let read t file = read_common t file ~exclusive:false
let read_for_update t file = read_common t file ~exclusive:true

let write t file content =
  if t.st = Finished then Error finished_error
  else begin
    let e = entry_for t file in
    let* () =
      match t.tmode with
      | Optimistic | Snapshot -> Ok ()
      | Locking -> ensure_exclusive t e
    in
    (* Record the version this write supersedes, for validation. *)
    let* () =
      if e.e_version >= 0 then Ok ()
      else
        match current_of t e with
        | Ok (vno, _) ->
          e.e_version <- vno;
          Ok ()
        | Error (Error.User_error _) -> Ok () (* empty file: blind write *)
        | Error err -> Error err
    in
    e.e_pending <- Some content;
    Ok ()
  end

let abort t =
  if t.st = Open then begin
    t.st <- Finished;
    List.iter
      (fun e ->
        ignore (invoke t e.e_file ~op:"abort_txn" [ Value.Str t.tid ]))
      t.entries;
    drop_locks t
  end

let prepare_one t e =
  (* Both modes validate against the version they observed: under pure
     2PL the exclusive lock makes this a no-op, but it catches
     lock-bypassing optimistic writers when the modes are mixed on one
     file (a lost update otherwise — found by property testing). *)
  let expected = e.e_version in
  match
    invoke t e.e_file ~op:"prepare" [ Value.Str t.tid; Value.Int expected ]
  with
  | Ok [ Value.Bool ok ] -> Ok ok
  | Ok _ -> Error (Error.User_error "unexpected prepare reply")
  | Error err -> Error err

let validate_read_only t e =
  match invoke t e.e_file ~op:"version_count" [] with
  | Ok [ Value.Int next ] -> Ok (next - 1 = e.e_version)
  | Ok _ -> Error (Error.User_error "unexpected version_count reply")
  | Error err -> Error err

let commit ?(replicate_to = []) ?(durable = false) t =
  if t.st = Finished then Failed finished_error
  else begin
    let finish outcome =
      t.st <- Finished;
      drop_locks t;
      outcome
    in
    let writes =
      List.filter (fun e -> e.e_pending <> None) t.entries
      |> List.sort (fun a b ->
             Name.compare
               (Capability.name a.e_file)
               (Capability.name b.e_file))
    in
    if writes = [] then finish Committed
    else begin
      (* Optimistic mode validates the read-only part of the read set
         (best effort, before the write-set prepares). *)
      let read_only_ok =
        match t.tmode with
        | Locking | Snapshot -> Ok true
        | Optimistic ->
          List.fold_left
            (fun acc e ->
              match acc with
              | Ok true when e.e_pending = None && e.e_version >= 0 ->
                validate_read_only t e
              | other -> other)
            (Ok true) t.entries
      in
      match read_only_ok with
      | Error err -> finish (Failed err)
      | Ok false -> finish Conflict
      | Ok true -> (
        (* Build one immutable version object per written file, placed
           at the file's node for locality. *)
        let versions =
          List.fold_left
            (fun acc e ->
              match acc with
              | Error _ -> acc
              | Ok pairs -> (
                let node =
                  Option.value ~default:t.from
                    (Cluster.where_is t.cl e.e_file)
                in
                let content = Option.get e.e_pending in
                match Client.new_version t.cl ~from:t.from ~node content with
                | Ok vcap -> Ok ((e, vcap) :: pairs)
                | Error err -> Error err))
            (Ok []) writes
        in
        match versions with
        | Error err -> finish (Failed err)
        | Ok pairs -> (
          let pairs = List.rev pairs in
          let replication =
            List.fold_left
              (fun acc (_, vcap) ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                  List.fold_left
                    (fun acc2 node ->
                      match acc2 with
                      | Error _ -> acc2
                      | Ok () -> Cluster.replicate t.cl vcap ~to_node:node)
                    (Ok ()) replicate_to)
              (Ok ()) pairs
          in
          match replication with
          | Error err -> finish (Failed err)
          | Ok () -> (
            (* Phase 1: prepare every written file. *)
            let rec phase1 prepared = function
              | [] -> Ok prepared
              | (e, vcap) :: rest -> (
                match prepare_one t e with
                | Ok true -> phase1 ((e, vcap) :: prepared) rest
                | Ok false ->
                  List.iter
                    (fun (pe, _) ->
                      ignore
                        (invoke t pe.e_file ~op:"abort_txn"
                           [ Value.Str t.tid ]))
                    prepared;
                  Error `Conflict
                | Error err ->
                  List.iter
                    (fun (pe, _) ->
                      ignore
                        (invoke t pe.e_file ~op:"abort_txn"
                           [ Value.Str t.tid ]))
                    prepared;
                  Error (`Failed err))
            in
            match phase1 [] pairs with
            | Error `Conflict -> finish Conflict
            | Error (`Failed err) -> finish (Failed err)
            | Ok _ -> (
              (* Phase 2: install the versions. *)
              let install =
                List.fold_left
                  (fun acc (e, vcap) ->
                    match acc with
                    | Error _ -> acc
                    | Ok () -> (
                      match
                        invoke t e.e_file ~op:"commit_version"
                          [ Value.Str t.tid; Value.Cap vcap ]
                      with
                      | Ok [ Value.Int vno ] ->
                        e.e_version <- vno;
                        e.e_cached <- e.e_pending;
                        e.e_pending <- None;
                        Ok ()
                      | Ok _ ->
                        Error (Error.User_error "unexpected commit reply")
                      | Error err -> Error err))
                  (Ok ()) pairs
              in
              match install with
              | Error err -> finish (Failed err)
              | Ok () ->
                if durable then
                  List.iter
                    (fun (e, _) ->
                      ignore (invoke t e.e_file ~op:"checkpoint_now" []))
                    pairs;
                finish Committed))))
    end
  end
