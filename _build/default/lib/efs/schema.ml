open Eden_util
open Eden_kernel
open Api

(* ------------------------------------------------------------------ *)
(* Versions *)

(* Parse a checksite argument: Int -1 = local, Int n = remote at n,
   List of Int = mirrored. *)
let reliability_of_value v =
  match v with
  | Value.Int -1 -> Ok Reliability.Local
  | Value.Int n -> Ok (Reliability.Remote n)
  | Value.List sites ->
    Ok
      (Reliability.Mirrored
         (List.filter_map (fun s -> Result.to_option (Value.to_int s)) sites))
  | _ -> Error (Error.Bad_arguments "checksites: int or list of ints")

(* Choosing checksites does not touch the representation, so it is
   legal even on frozen objects (versions). *)
let set_checksites_op =
  Typemgr.operation "set_checksites" ~mutates:false (fun ctx args ->
      let* v = arg1 args in
      let* rel = reliability_of_value v in
      let* () = ctx.set_reliability rel in
      let* () = ctx.checkpoint () in
      reply_unit)

let version_type =
  Typemgr.make_exn ~name:"efs_version" ~code_bytes:4_096
    [
      Typemgr.operation "read" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
      Typemgr.operation "size" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ Value.Int (Value.size_bytes (ctx.get_repr ())) ]);
      set_checksites_op;
    ]

(* ------------------------------------------------------------------ *)
(* Files *)

(* Representation: Pair (Int next_vno, List of Pair (Int vno, Cap v)),
   newest version first. *)

let file_repr ctx =
  match ctx.get_repr () with
  | Value.Pair (Value.Int next, Value.List versions) -> Ok (next, versions)
  | _ -> Error (Error.User_error "corrupt file representation")

let empty_file_repr = Value.Pair (Value.Int 0, Value.List [])

(* A mutable cell held in a kernel message port: take the value, apply
   [f], put the result back.  Callers must not block between take and
   put unless they hold the cell's guarding semaphore. *)
let cell_update port ~default f =
  let v =
    match Eden_sim.Mailbox.try_recv port with
    | Some v -> v
    | None -> default
  in
  let v', out = f v in
  let ok = Eden_sim.Mailbox.try_send port v' in
  assert ok;
  out

(* Readers/writer lock built from the kernel's semaphore and port
   primitives (short-term state: a crash clears all locks). *)
let with_lock_parts ctx f =
  let mutex = ctx.semaphore "lock.mutex" ~init:1 in
  let wrt = ctx.semaphore "lock.wrt" ~init:1 in
  let rc = ctx.port "lock.readcount" in
  f ~mutex ~wrt ~rc

let read_count rc =
  match Eden_sim.Mailbox.try_recv rc with
  | Some (Value.Int n) ->
    let ok = Eden_sim.Mailbox.try_send rc (Value.Int n) in
    assert ok;
    n
  | Some v ->
    let ok = Eden_sim.Mailbox.try_send rc v in
    assert ok;
    0
  | None -> 0

let set_read_count rc n =
  ignore (Eden_sim.Mailbox.try_recv rc);
  let ok = Eden_sim.Mailbox.try_send rc (Value.Int n) in
  assert ok

let timeout_of_ms ms = if ms <= 0 then None else Some (Time.ms ms)

let lock_shared ctx ms =
  with_lock_parts ctx (fun ~mutex ~wrt ~rc ->
      if not (Eden_sim.Semaphore.acquire ?timeout:(timeout_of_ms ms) mutex)
      then false
      else begin
        let n = read_count rc in
        let granted =
          if n = 0 then
            Eden_sim.Semaphore.acquire ?timeout:(timeout_of_ms ms) wrt
          else true
        in
        if granted then set_read_count rc (n + 1);
        Eden_sim.Semaphore.release mutex;
        granted
      end)

let unlock_shared ctx =
  with_lock_parts ctx (fun ~mutex ~wrt ~rc ->
      ignore (Eden_sim.Semaphore.acquire mutex);
      let n = read_count rc in
      if n > 0 then begin
        set_read_count rc (n - 1);
        if n = 1 then Eden_sim.Semaphore.release wrt
      end;
      Eden_sim.Semaphore.release mutex)

let lock_exclusive ctx ms =
  with_lock_parts ctx (fun ~mutex:_ ~wrt ~rc:_ ->
      Eden_sim.Semaphore.acquire ?timeout:(timeout_of_ms ms) wrt)

let unlock_exclusive ctx =
  with_lock_parts ctx (fun ~mutex:_ ~wrt ~rc:_ ->
      Eden_sim.Semaphore.release wrt)

(* The prepared-transaction marker, also short-term state. *)
let prepared_cell ctx = ctx.port "txn.prepared"

let prepared_by ctx =
  let cell = prepared_cell ctx in
  cell_update cell ~default:Value.Unit (fun v ->
      ( v,
        match v with
        | Value.Str txn -> Some txn
        | Value.Unit | _ -> None ))

let set_prepared ctx txn =
  let cell = prepared_cell ctx in
  cell_update cell ~default:Value.Unit (fun _ -> (Value.Str txn, ()))

let clear_prepared ctx =
  let cell = prepared_cell ctx in
  cell_update cell ~default:Value.Unit (fun _ -> (Value.Unit, ()))

let file_ops =
  [
    Typemgr.operation "current" ~mutates:false (fun ctx args ->
        let* () = no_args args in
        let* _next, versions = file_repr ctx in
        match versions with
        | Value.Pair (Value.Int vno, Value.Cap c) :: _ ->
          reply [ Value.Int vno; Value.Cap c ]
        | [] -> user_error "file has no versions"
        | _ -> user_error "corrupt version list");
    Typemgr.operation "version_at" ~mutates:false (fun ctx args ->
        let* v = arg1 args in
        let* want = int_arg v in
        let* _next, versions = file_repr ctx in
        let found =
          List.find_map
            (fun entry ->
              match entry with
              | Value.Pair (Value.Int vno, Value.Cap c) when vno = want ->
                Some c
              | _ -> None)
            versions
        in
        match found with
        | Some c -> reply [ Value.Cap c ]
        | None -> user_error (Printf.sprintf "no version %d" want));
    Typemgr.operation "version_count" ~mutates:false (fun ctx args ->
        let* () = no_args args in
        let* next, _ = file_repr ctx in
        reply [ Value.Int next ]);
    Typemgr.operation "prepare" (fun ctx args ->
        let* a, b = arg2 args in
        let* txn = str_arg a in
        let* expected = int_arg b in
        match prepared_by ctx with
        | Some other when other <> txn -> reply [ Value.Bool false ]
        | Some _ | None ->
          let* next, _ = file_repr ctx in
          if expected >= 0 && expected <> next - 1 then
            (* Optimistic validation failed: the file advanced past the
               version this transaction read. *)
            reply [ Value.Bool false ]
          else begin
            set_prepared ctx txn;
            reply [ Value.Bool true ]
          end);
    Typemgr.operation "commit_version" (fun ctx args ->
        let* a, b = arg2 args in
        let* txn = str_arg a in
        let* vcap = cap_arg b in
        match prepared_by ctx with
        | Some holder when holder = txn ->
          let* next, versions = file_repr ctx in
          let entry = Value.Pair (Value.Int next, Value.Cap vcap) in
          let* () =
            ctx.set_repr
              (Value.Pair (Value.Int (next + 1), Value.List (entry :: versions)))
          in
          clear_prepared ctx;
          reply [ Value.Int next ]
        | Some _ | None -> user_error "commit without prepare");
    Typemgr.operation "abort_txn" (fun ctx args ->
        let* v = arg1 args in
        let* txn = str_arg v in
        (match prepared_by ctx with
        | Some holder when holder = txn -> clear_prepared ctx
        | Some _ | None -> ());
        reply_unit);
    Typemgr.operation "lock_shared" (fun ctx args ->
        let* v = arg1 args in
        let* ms = int_arg v in
        reply [ Value.Bool (lock_shared ctx ms) ]);
    Typemgr.operation "lock_exclusive" (fun ctx args ->
        let* v = arg1 args in
        let* ms = int_arg v in
        reply [ Value.Bool (lock_exclusive ctx ms) ]);
    Typemgr.operation "unlock_shared" (fun ctx args ->
        let* () = no_args args in
        unlock_shared ctx;
        reply_unit);
    Typemgr.operation "unlock_exclusive" (fun ctx args ->
        let* () = no_args args in
        unlock_exclusive ctx;
        reply_unit);
    Typemgr.operation "checkpoint_now" (fun ctx args ->
        let* () = no_args args in
        let* () = ctx.checkpoint () in
        reply_unit);
    set_checksites_op;
  ]

let file_classes =
  [
    (* Lock operations block while waiting, so they need headroom. *)
    {
      Opclass.class_name = "sync";
      operations =
        [ "lock_shared"; "lock_exclusive"; "unlock_shared"; "unlock_exclusive" ];
      limit = 32;
    };
    (* Data operations are serialised: prepare/commit atomicity. *)
    {
      Opclass.class_name = "data";
      operations =
        [
          "current"; "version_at"; "version_count"; "prepare";
          "commit_version"; "abort_txn"; "checkpoint_now"; "set_checksites";
        ];
      limit = 1;
    };
  ]

let file_type =
  Typemgr.make_exn ~name:"efs_file" ~classes:file_classes ~code_bytes:12_288
    file_ops

(* ------------------------------------------------------------------ *)
(* Directories *)

let dir_entries ctx =
  match ctx.get_repr () with
  | Value.List entries -> Ok entries
  | _ -> Error (Error.User_error "corrupt directory representation")

let dir_type =
  Typemgr.make_exn ~name:"efs_dir" ~code_bytes:8_192
    ~classes:
      (Opclass.one_class ~name:"all"
         ~operations:
           [ "lookup"; "bind"; "rebind"; "unbind"; "list"; "entries";
             "checkpoint_now" ]
         ~limit:1)
    [
      Typemgr.operation "lookup" ~mutates:false (fun ctx args ->
          let* v = arg1 args in
          let* name = str_arg v in
          let* entries = dir_entries ctx in
          let found =
            List.find_map
              (fun e ->
                match e with
                | Value.Pair (Value.Str n, Value.Cap c) when n = name -> Some c
                | _ -> None)
              entries
          in
          match found with
          | Some c -> reply [ Value.Cap c ]
          | None -> user_error (Printf.sprintf "no entry %S" name));
      Typemgr.operation "bind" (fun ctx args ->
          let* a, b = arg2 args in
          let* name = str_arg a in
          let* c = cap_arg b in
          let* entries = dir_entries ctx in
          let exists =
            List.exists
              (fun e ->
                match e with
                | Value.Pair (Value.Str n, _) -> n = name
                | _ -> false)
              entries
          in
          if exists then user_error (Printf.sprintf "entry %S exists" name)
          else
            let* () =
              ctx.set_repr
                (Value.List
                   (Value.Pair (Value.Str name, Value.Cap c) :: entries))
            in
            reply_unit);
      Typemgr.operation "rebind" (fun ctx args ->
          let* a, b = arg2 args in
          let* name = str_arg a in
          let* c = cap_arg b in
          let* entries = dir_entries ctx in
          let others =
            List.filter
              (fun e ->
                match e with
                | Value.Pair (Value.Str n, _) -> n <> name
                | _ -> true)
              entries
          in
          let* () =
            ctx.set_repr
              (Value.List (Value.Pair (Value.Str name, Value.Cap c) :: others))
          in
          reply_unit);
      Typemgr.operation "unbind" (fun ctx args ->
          let* v = arg1 args in
          let* name = str_arg v in
          let* entries = dir_entries ctx in
          let others =
            List.filter
              (fun e ->
                match e with
                | Value.Pair (Value.Str n, _) -> n <> name
                | _ -> true)
              entries
          in
          if List.length others = List.length entries then
            user_error (Printf.sprintf "no entry %S" name)
          else
            let* () = ctx.set_repr (Value.List others) in
            reply_unit);
      Typemgr.operation "list" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let* entries = dir_entries ctx in
          let names =
            List.filter_map
              (fun e ->
                match e with
                | Value.Pair (Value.Str n, _) -> Some (Value.Str n)
                | _ -> None)
              entries
          in
          reply [ Value.List names ]);
      Typemgr.operation "entries" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let* entries = dir_entries ctx in
          reply [ Value.List entries ]);
      Typemgr.operation "checkpoint_now" (fun ctx args ->
          let* () = no_args args in
          let* () = ctx.checkpoint () in
          reply_unit);
    ]

let register cl =
  Cluster.register_type cl version_type;
  Cluster.register_type cl file_type;
  Cluster.register_type cl dir_type
