lib/efs/txn.mli: Capability Cluster Eden_kernel Error Value
