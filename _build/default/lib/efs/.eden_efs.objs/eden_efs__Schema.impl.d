lib/efs/schema.ml: Api Cluster Eden_kernel Eden_sim Eden_util Error List Opclass Printf Reliability Result Time Typemgr Value
