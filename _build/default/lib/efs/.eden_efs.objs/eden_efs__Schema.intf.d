lib/efs/schema.mli: Eden_kernel
