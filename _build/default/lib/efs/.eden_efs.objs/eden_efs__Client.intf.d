lib/efs/client.mli: Capability Cluster Eden_kernel Error Value
