lib/efs/client.ml: Capability Cluster Eden_kernel Error List Name Option Printf Result Schema String Value
