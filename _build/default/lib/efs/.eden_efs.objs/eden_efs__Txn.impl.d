lib/efs/txn.ml: Capability Client Cluster Eden_kernel Error List Name Option Printf Result Value
