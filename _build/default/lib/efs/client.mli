(** EFS client operations: naming, files and plain reads.

    All functions are blocking (call them from a simulation process)
    and issue ordinary kernel invocations — the client library owns no
    private channel to the file system. *)

open Eden_kernel

val make_root :
  Cluster.t -> node:int -> (Capability.t, Error.t) result
(** Create an empty root directory on [node]. *)

val mkdir :
  Cluster.t ->
  from:int ->
  dir:Capability.t ->
  name:string ->
  ?node:int ->
  unit ->
  (Capability.t, Error.t) result
(** Create a directory (on [node], default: where [dir]'s node is
    unknown to the client so [from]) and bind it into [dir]. *)

val create_file :
  Cluster.t ->
  from:int ->
  dir:Capability.t ->
  name:string ->
  ?node:int ->
  ?content:Value.t ->
  unit ->
  (Capability.t, Error.t) result
(** Create a file, bind it in [dir], and if [content] is given store it
    as version 0. *)

val new_version :
  Cluster.t ->
  from:int ->
  node:int ->
  Value.t ->
  (Capability.t, Error.t) result
(** Create and freeze a version object holding [content]. *)

val resolve :
  Cluster.t ->
  from:int ->
  root:Capability.t ->
  string ->
  (Capability.t, Error.t) result
(** Resolve a ["a/b/c"] path. Empty components are rejected. *)

val read_file :
  Cluster.t -> from:int -> Capability.t -> (Value.t, Error.t) result
(** Contents of the current version. *)

val read_version_at :
  Cluster.t -> from:int -> Capability.t -> int -> (Value.t, Error.t) result

val version_count :
  Cluster.t -> from:int -> Capability.t -> (int, Error.t) result

val list_dir :
  Cluster.t -> from:int -> Capability.t -> (string list, Error.t) result

val replicate_current_version :
  Cluster.t ->
  from:int ->
  Capability.t ->
  to_nodes:int list ->
  (unit, Error.t) result
(** Install read-only replicas of the file's current (frozen) version
    at the given nodes. *)

val make_durable :
  Cluster.t ->
  from:int ->
  Capability.t ->
  mirrors:int list ->
  (unit, Error.t) result
(** Reliability replication (paper §5: versions "replicated at multiple
    sites for reliability"): set mirrored checksites on the file and on
    every existing version, checkpointing each — the file then survives
    the permanent loss of any single checksite. *)

val checkpoint_tree :
  Cluster.t -> from:int -> root:Capability.t -> (int, Error.t) result
(** Make an entire naming tree durable: checkpoint the directory, every
    file bound in it (and their version objects), recursing into
    sub-directories.  Returns the number of objects checkpointed.
    Requires full-rights capabilities in the tree (the default). *)

val delete_file :
  Cluster.t ->
  from:int ->
  dir:Capability.t ->
  name:string ->
  (unit, Error.t) result
(** Unbind [name] from [dir] and destroy the file object and every one
    of its versions (requires full rights on the bound capability).
    Version immutability ends where the file's existence does. *)
