(** Location-{e dependent} remote procedure call — the comparison
    baseline for Eden's location transparency.

    The same machines, LAN and cost model as the Eden kernel, but the
    "traditional programming methodology" of 1981 networks: a caller
    names the {e node} that hosts a procedure.  There is no locate
    protocol, no capability check, no coordinator, no forwarding, no
    mobility.  The difference between an {!call} here and an
    {!Eden_kernel.Cluster.invoke} is, by construction, the price of the
    Eden object model (experiment E9). *)

open Eden_util
open Eden_kernel

type t

type ctx = {
  rpc_node : int;  (** the node this handler runs on *)
  rpc_compute : Time.t -> unit;  (** consume local CPU *)
  rpc_call :
    ?timeout:Time.t ->
    node:int ->
    proc:string ->
    Value.t list ->
    (Value.t list, Error.t) result;
      (** nested call to another node's procedure *)
}

type handler = ctx -> Value.t list -> (Value.t list, Error.t) result

val create :
  ?seed:int64 ->
  ?net:Eden_net.Params.t ->
  configs:Eden_hw.Machine.config list ->
  unit ->
  t

val default : ?seed:int64 -> n_nodes:int -> unit -> t
val engine : t -> Eden_sim.Engine.t
val node_count : t -> int
val machine : t -> int -> Eden_hw.Machine.t

val register : t -> node:int -> proc:string -> handler -> unit
(** Raises [Invalid_argument] on a duplicate (node, proc) pair. *)

val call :
  t ->
  from:int ->
  ?timeout:Time.t ->
  node:int ->
  proc:string ->
  Value.t list ->
  (Value.t list, Error.t) result
(** Blocking.  Local calls skip the network; calls naming a node with
    no such procedure fail with [No_such_operation]. *)

val calls_made : t -> int
val remote_calls : t -> int

val in_process : t -> ?name:string -> (unit -> unit) -> Eden_sim.Engine.Pid.t
val run : ?until:Time.t -> t -> unit
