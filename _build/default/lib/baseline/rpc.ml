open Eden_util
open Eden_sim
open Eden_net
open Eden_hw
open Eden_kernel

type msg =
  | Call of {
      call_id : int * int;  (* origin node, sequence *)
      proc : string;
      args : Value.t list;
      reply_to : int;
    }
  | Reply of {
      call_id : int * int;
      result : (Value.t list, Error.t) result;
    }

let msg_size = function
  | Call { proc; args; _ } ->
    32 + String.length proc + Value.list_size_bytes args
  | Reply { result; _ } -> (
    32 + match result with Ok vs -> Value.list_size_bytes vs | Error _ -> 8)

type node = {
  n_id : int;
  n_machine : Machine.t;
  n_link : msg Msglink.t;
  n_procs : (string, handler) Hashtbl.t;
  n_pending : (int, (Value.t list, Error.t) result Promise.t) Hashtbl.t;
  n_seq : Idgen.t;
}

and ctx = {
  rpc_node : int;
  rpc_compute : Time.t -> unit;
  rpc_call :
    ?timeout:Time.t ->
    node:int ->
    proc:string ->
    Value.t list ->
    (Value.t list, Error.t) result;
}

and handler = ctx -> Value.t list -> (Value.t list, Error.t) result

and t = {
  eng : Engine.t;
  nodes : node array;
  mutable n_calls : int;
  mutable n_remote : int;
}

let engine f = f.eng
let node_count f = Array.length f.nodes

let node_of f i =
  if i < 0 || i >= Array.length f.nodes then
    invalid_arg (Printf.sprintf "Rpc: no such node %d" i)
  else f.nodes.(i)

let machine f i = (node_of f i).n_machine
let costs node = (Machine.config node.n_machine).Machine.costs
let consume node t = Cpu.consume (Machine.cpu node.n_machine) t

let rec make_ctx f node =
  {
    rpc_node = node.n_id;
    rpc_compute = (fun t -> consume node t);
    rpc_call = (fun ?timeout ~node:dst ~proc args ->
        do_call f ~from:node.n_id ?timeout ~node:dst ~proc args);
  }

(* Run a procedure on its node and hand the result to [reply]. *)
and serve f node proc args reply =
  consume node (costs node).Costs.invoke_dispatch_cpu;
  match Hashtbl.find_opt node.n_procs proc with
  | None -> reply (Error (Error.No_such_operation proc))
  | Some h ->
    consume node (costs node).Costs.process_create_cpu;
    let result =
      try h (make_ctx f node) args with
      | Engine.Killed as e -> raise e
      | exn -> Error (Error.User_error (Printexc.to_string exn))
    in
    reply result

and do_call f ~from ?timeout ~node:dst ~proc args =
  let origin = node_of f from in
  f.n_calls <- f.n_calls + 1;
  consume origin (costs origin).Costs.invoke_request_cpu;
  if dst = from then begin
    (* Local procedure: no marshalling, no network. *)
    let cell = ref None in
    serve f origin proc args (fun r -> cell := Some r);
    match !cell with
    | Some r -> r
    | None -> Error (Error.User_error "rpc: handler did not reply")
  end
  else begin
    let target = node_of f dst in
    ignore target;
    f.n_remote <- f.n_remote + 1;
    consume origin
      (Costs.copy_cost (costs origin) ~bytes:(Value.list_size_bytes args));
    let seq = Idgen.next origin.n_seq in
    let pr = Promise.create f.eng in
    Hashtbl.replace origin.n_pending seq pr;
    Msglink.send origin.n_link ~dst
      (Call { call_id = (from, seq); proc; args; reply_to = from });
    let r =
      match Promise.await ?timeout pr with
      | Some r ->
        (match r with
        | Ok vs ->
          consume origin (costs origin).Costs.invoke_reply_cpu;
          consume origin
            (Costs.copy_cost (costs origin) ~bytes:(Value.list_size_bytes vs))
        | Error _ -> ());
        r
      | None -> Error Error.Timeout
    in
    Hashtbl.remove origin.n_pending seq;
    r
  end

let on_message f node ~src:_ msg =
  match msg with
  | Call { call_id; proc; args; reply_to } ->
    let pid =
      Engine.spawn f.eng ~name:(Printf.sprintf "rpc:%s" proc) (fun () ->
          consume node
            (Costs.copy_cost (costs node)
               ~bytes:(Value.list_size_bytes args));
          serve f node proc args (fun result ->
              Msglink.send node.n_link ~dst:reply_to
                (Reply { call_id; result })))
    in
    Engine.set_daemon f.eng pid
  | Reply { call_id = _, seq; result } -> (
    match Hashtbl.find_opt node.n_pending seq with
    | Some pr -> ignore (Promise.fill pr result)
    | None -> () (* late reply after timeout *))

let create ?(seed = 42L) ?net ~configs () =
  if configs = [] then invalid_arg "Rpc.create: no machine configs";
  let eng = Engine.create ~seed () in
  let lan = Msglink.create_lan ?params:net eng in
  let nodes =
    Array.of_list
      (List.map
         (fun cfg ->
           let machine = Machine.create eng cfg in
           let link = Msglink.attach lan ~name:cfg.Machine.name ~size:msg_size in
           {
             n_id = Msglink.address link;
             n_machine = machine;
             n_link = link;
             n_procs = Hashtbl.create 16;
             n_pending = Hashtbl.create 16;
             n_seq = Idgen.create ();
           })
         configs)
  in
  let f = { eng; nodes; n_calls = 0; n_remote = 0 } in
  Array.iter
    (fun node ->
      Msglink.on_message node.n_link (fun ~src msg -> on_message f node ~src msg))
    nodes;
  f

let default ?seed ~n_nodes () =
  if n_nodes < 1 then invalid_arg "Rpc.default: need at least one node";
  create ?seed
    ~configs:
      (List.init n_nodes (fun i ->
           Machine.default_config ~name:(Printf.sprintf "rpc%d" i)))
    ()

let register f ~node ~proc handler =
  let n = node_of f node in
  if Hashtbl.mem n.n_procs proc then
    invalid_arg
      (Printf.sprintf "Rpc.register: %S already registered on node %d" proc
         node)
  else Hashtbl.replace n.n_procs proc handler

let call f ~from ?timeout ~node ~proc args =
  do_call f ~from ?timeout ~node ~proc args

let calls_made f = f.n_calls
let remote_calls f = f.n_remote
let in_process f ?(name = "driver") body = Engine.spawn f.eng ~name body
let run ?until f = Engine.run ?until f.eng
