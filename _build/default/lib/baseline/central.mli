(** The "good centralized system" pole of the paper's introduction.

    A time-sharing configuration on the Eden substrate: one well-
    provisioned central server plus thin terminal nodes that place all
    their objects on the server and reach them over the LAN.  Used by
    experiment E9 to reproduce the integration-vs-distribution
    trade-off that motivates Eden. *)

val server_node : int
(** The node id of the central server (always 0). *)

val cluster :
  ?seed:int64 ->
  ?server_gdps:int ->
  ?server_memory:int ->
  terminals:int ->
  unit ->
  Eden_kernel.Cluster.t
(** A cluster with node 0 as the central server (default: 8 GDPs,
    8 MB) and [terminals] single-GDP terminal nodes with minimal
    memory.  Requires [terminals >= 1]. *)

val create_on_server :
  Eden_kernel.Cluster.t ->
  type_name:string ->
  Eden_kernel.Value.t ->
  (Eden_kernel.Capability.t, Eden_kernel.Error.t) result
(** Blocking.  Create an object on the central server, as every
    centralized-configuration workload does. *)
