lib/baseline/central.mli: Eden_kernel
