lib/baseline/rpc.ml: Array Costs Cpu Eden_hw Eden_kernel Eden_net Eden_sim Eden_util Engine Error Hashtbl Idgen List Machine Msglink Printexc Printf Promise String Time Value
