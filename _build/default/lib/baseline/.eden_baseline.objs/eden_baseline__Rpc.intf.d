lib/baseline/rpc.mli: Eden_hw Eden_kernel Eden_net Eden_sim Eden_util Error Time Value
