lib/baseline/central.ml: Cluster Eden_hw Eden_kernel List Machine Printf
