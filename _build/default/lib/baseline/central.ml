open Eden_hw
open Eden_kernel

let server_node = 0

let cluster ?seed ?(server_gdps = 8) ?(server_memory = 8_000_000) ~terminals
    () =
  if terminals < 1 then invalid_arg "Central.cluster: need terminals";
  let server =
    {
      (Machine.file_server_config ~name:"central") with
      Machine.gdps = server_gdps;
      memory_bytes = server_memory;
    }
  in
  let terminal i =
    {
      (Machine.default_config ~name:(Printf.sprintf "terminal%d" i)) with
      Machine.gdps = 1;
      memory_bytes = 256_000;
    }
  in
  Cluster.create ?seed ~configs:(server :: List.init terminals terminal) ()

let create_on_server cl ~type_name init =
  Cluster.create_object cl ~node:server_node ~type_name init
