(** A k-server resource with a FIFO queue.

    Models contended hardware: a pool of identical servers (CPUs, disk
    arms).  Jobs acquire a server, hold it for a service time, and
    release it.  The resource records utilisation and queueing-delay
    statistics for the experiment reports. *)

type t

val create : Engine.t -> servers:int -> name:string -> t
(** [servers] must be positive. *)

val name : t -> string
val servers : t -> int

val use : t -> Eden_util.Time.t -> unit
(** [use r service] blocks until a server is free, occupies it for
    [service], then releases it.  Must be called from a process. *)

val acquire : t -> unit
(** Take a server (blocking); pair with {!release}.  Prefer {!use}. *)

val release : t -> unit

val busy : t -> int
(** Servers currently occupied. *)

val queue_length : t -> int

(** {2 Accounting} *)

val jobs_completed : t -> int
val busy_time : t -> Eden_util.Time.t
(** Total server-seconds of service delivered. *)

val utilisation : t -> over:Eden_util.Time.t -> float
(** [busy_time / (servers * over)]; 0 when [over] is zero. *)

val wait_stats : t -> Eden_util.Stats.t
(** Queueing delays (seconds) observed by {!use}/{!acquire}. *)
