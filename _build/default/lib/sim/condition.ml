open Eden_util

type t = { eng : Engine.t; queue : Engine.handle Fifo.t }

let create eng = { eng; queue = Fifo.create () }

let await ?timeout c =
  Engine.suspend ?timeout (fun h -> Fifo.push_exn c.queue h)

let rec signal c =
  match Fifo.pop c.queue with
  | None -> ()
  | Some h ->
    if Engine.handle_pending h then Engine.wake c.eng h else signal c

let broadcast c =
  let rec drain () =
    match Fifo.pop c.queue with
    | None -> ()
    | Some h ->
      if Engine.handle_pending h then Engine.wake c.eng h;
      drain ()
  in
  drain ()

let waiters c =
  let n = ref 0 in
  Fifo.iter (fun h -> if Engine.handle_pending h then incr n) c.queue;
  !n
