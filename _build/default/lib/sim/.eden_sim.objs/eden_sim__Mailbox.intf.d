lib/sim/mailbox.mli: Eden_util Engine
