lib/sim/promise.ml: Condition Engine
