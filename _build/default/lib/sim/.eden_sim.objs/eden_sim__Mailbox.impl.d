lib/sim/mailbox.ml: Eden_util Engine Fifo
