lib/sim/resource.ml: Eden_util Engine Float Fun Semaphore Stats Time
