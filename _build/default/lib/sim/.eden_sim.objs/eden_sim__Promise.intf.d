lib/sim/promise.mli: Eden_util Engine
