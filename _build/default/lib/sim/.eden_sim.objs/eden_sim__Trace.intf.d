lib/sim/trace.mli: Eden_util Format
