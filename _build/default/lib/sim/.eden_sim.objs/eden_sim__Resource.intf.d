lib/sim/resource.mli: Eden_util Engine
