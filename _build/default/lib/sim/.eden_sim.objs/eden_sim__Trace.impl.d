lib/sim/trace.ml: Array Eden_util Fifo Format List Time
