lib/sim/condition.ml: Eden_util Engine Fifo
