lib/sim/engine.ml: Eden_util Effect Format Hashtbl Idgen Int List Pqueue Printf Splitmix Time
