lib/sim/condition.mli: Eden_util Engine
