lib/sim/semaphore.mli: Eden_util Engine
