lib/sim/engine.mli: Eden_util Format
