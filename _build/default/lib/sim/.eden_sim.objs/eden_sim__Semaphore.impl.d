lib/sim/semaphore.ml: Eden_util Engine Fifo
