open Eden_util

type t = {
  eng : Engine.t;
  rname : string;
  nservers : int;
  sem : Semaphore.t;
  mutable nbusy : int;
  mutable completed : int;
  mutable total_busy : Time.t;
  waits : Stats.t;
}

let create eng ~servers ~name =
  if servers <= 0 then invalid_arg "Resource.create: servers must be positive";
  {
    eng;
    rname = name;
    nservers = servers;
    sem = Semaphore.create eng ~init:servers;
    nbusy = 0;
    completed = 0;
    total_busy = Time.zero;
    waits = Stats.create ();
  }

let name r = r.rname
let servers r = r.nservers

let acquire r =
  let started = Engine.now r.eng in
  let got = Semaphore.acquire r.sem in
  (* No timeout was passed, so acquisition cannot fail. *)
  assert got;
  Stats.add_time r.waits (Time.diff (Engine.now r.eng) started);
  r.nbusy <- r.nbusy + 1

let release r =
  r.nbusy <- r.nbusy - 1;
  Semaphore.release r.sem

let use r service =
  acquire r;
  Fun.protect
    ~finally:(fun () ->
      release r;
      r.completed <- r.completed + 1)
    (fun () ->
      Engine.delay service;
      r.total_busy <- Time.add r.total_busy service)

let busy r = r.nbusy
let queue_length r = Semaphore.waiters r.sem
let jobs_completed r = r.completed
let busy_time r = r.total_busy

let utilisation r ~over =
  if Time.is_zero over then 0.0
  else Time.to_sec r.total_busy /. (Float.of_int r.nservers *. Time.to_sec over)

let wait_stats r = r.waits
