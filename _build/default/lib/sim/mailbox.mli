(** Message mailboxes between simulation processes.

    Delivery uses direct hand-off: a value given to a blocked receiver
    cannot be intercepted by another receiver arriving at the same
    instant.  A mailbox may be bounded, in which case {!send} blocks
    while the buffer is full. *)

type 'a t

val create : ?capacity:int -> Engine.t -> 'a t
(** [capacity], if given, bounds the number of buffered messages (it
    must be positive); otherwise the buffer is unbounded. *)

val send : ?timeout:Eden_util.Time.t -> 'a t -> 'a -> bool
(** Deliver a message, blocking while a bounded mailbox is full.
    Returns [false] only if [timeout] elapsed before there was room
    (the message was not delivered). *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking send; [false] if the mailbox is full. *)

val recv : ?timeout:Eden_util.Time.t -> 'a t -> 'a option
(** Receive the oldest message, blocking while the mailbox is empty.
    [None] only on timeout. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
(** Buffered (undelivered) messages. *)

val receivers_waiting : 'a t -> int
val senders_waiting : 'a t -> int
