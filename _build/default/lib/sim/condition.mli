(** Condition variables for simulation processes.

    {!await} blocks the calling process until {!signal} or {!broadcast};
    there is no associated mutex because simulation processes never run
    concurrently — a process keeps control until it blocks. *)

type t

val create : Engine.t -> t

val await : ?timeout:Eden_util.Time.t -> t -> Engine.wake
(** Block until signalled, or until [timeout] elapses. *)

val signal : t -> unit
(** Wake the longest-waiting pending process, if any. *)

val broadcast : t -> unit
(** Wake every pending process. *)

val waiters : t -> int
(** Number of processes currently blocked (stale entries excluded). *)
