open Eden_util

type 'a receiver = { mutable slot : 'a option; r_h : Engine.handle }
type 'a sender = { item : 'a; s_h : Engine.handle }

type 'a t = {
  eng : Engine.t;
  capacity : int option;
  buffer : 'a Fifo.t;
  receivers : 'a receiver Fifo.t;
  senders : 'a sender Fifo.t;
}

let create ?capacity eng =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Mailbox.create: capacity must be positive"
  | Some _ | None -> ());
  {
    eng;
    capacity;
    buffer = Fifo.create ();
    receivers = Fifo.create ();
    senders = Fifo.create ();
  }

let is_full mb =
  match mb.capacity with
  | None -> false
  | Some c -> Fifo.length mb.buffer >= c

let rec pop_pending_receiver mb =
  match Fifo.pop mb.receivers with
  | None -> None
  | Some r ->
    if Engine.handle_pending r.r_h then Some r else pop_pending_receiver mb

let rec pop_pending_sender mb =
  match Fifo.pop mb.senders with
  | None -> None
  | Some s ->
    if Engine.handle_pending s.s_h then Some s else pop_pending_sender mb

let try_send mb v =
  match pop_pending_receiver mb with
  | Some r ->
    r.slot <- Some v;
    Engine.wake mb.eng r.r_h;
    true
  | None ->
    if is_full mb then false
    else begin
      Fifo.push_exn mb.buffer v;
      true
    end

let send ?timeout mb v =
  if try_send mb v then true
  else
    match
      Engine.suspend ?timeout (fun h ->
          Fifo.push_exn mb.senders { item = v; s_h = h })
    with
    | Engine.Woken -> true (* the message was taken on our behalf *)
    | Engine.Timed_out -> false

(* After consuming a buffered message, move one blocked sender's message
   into the freed buffer slot. *)
let refill_from_sender mb =
  if not (is_full mb) then
    match pop_pending_sender mb with
    | None -> ()
    | Some s ->
      Fifo.push_exn mb.buffer s.item;
      Engine.wake mb.eng s.s_h

let try_recv mb =
  match Fifo.pop mb.buffer with
  | Some v ->
    refill_from_sender mb;
    Some v
  | None -> None

let recv ?timeout mb =
  match try_recv mb with
  | Some v -> Some v
  | None -> (
    let cell = ref None in
    match
      Engine.suspend ?timeout (fun h ->
          let r = { slot = None; r_h = h } in
          cell := Some r;
          Fifo.push_exn mb.receivers r)
    with
    | Engine.Woken -> (
      match !cell with
      | Some { slot = Some v; _ } -> Some v
      | Some { slot = None; _ } | None ->
        (* A sender that wakes us always fills the slot first. *)
        assert false)
    | Engine.Timed_out -> None)

let length mb = Fifo.length mb.buffer

let receivers_waiting mb =
  let n = ref 0 in
  Fifo.iter (fun r -> if Engine.handle_pending r.r_h then incr n) mb.receivers;
  !n

let senders_waiting mb =
  let n = ref 0 in
  Fifo.iter (fun s -> if Engine.handle_pending s.s_h then incr n) mb.senders;
  !n
