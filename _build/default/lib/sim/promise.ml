type 'a t = {
  cond : Condition.t;
  mutable value : 'a option;
}

let create eng = { cond = Condition.create eng; value = None }

let fill p v =
  match p.value with
  | Some _ -> false
  | None ->
    p.value <- Some v;
    Condition.broadcast p.cond;
    true

let rec await ?timeout p =
  match p.value with
  | Some v -> Some v
  | None -> (
    match Condition.await ?timeout p.cond with
    | Engine.Woken -> await p
    | Engine.Timed_out -> None)

let peek p = p.value
let is_filled p = p.value <> None
