(** Counting semaphores with FIFO hand-off.

    {!release} transfers a permit directly to the longest-waiting
    blocked process (if any), so a permit can never be stolen by a
    process that arrives between release and resumption: if {!acquire}
    returns [true] the caller holds a permit. *)

type t

val create : Engine.t -> init:int -> t
(** [init] is the initial permit count; must be non-negative. *)

val acquire : ?timeout:Eden_util.Time.t -> t -> bool
(** Take one permit, blocking if none is available.  Returns [false]
    only when [timeout] elapsed first (no permit is held then). *)

val try_acquire : t -> bool
(** Non-blocking: take a permit if immediately available. *)

val release : t -> unit
val permits : t -> int
(** Currently available (un-handed-off) permits. *)

val waiters : t -> int
