open Eden_util

type t = {
  eng : Engine.t;
  mutable count : int;
  queue : Engine.handle Fifo.t;
}

let create eng ~init =
  if init < 0 then invalid_arg "Semaphore.create: negative init";
  { eng; count = init; queue = Fifo.create () }

let try_acquire s =
  if s.count > 0 then begin
    s.count <- s.count - 1;
    true
  end
  else false

let acquire ?timeout s =
  if try_acquire s then true
  else
    match Engine.suspend ?timeout (fun h -> Fifo.push_exn s.queue h) with
    | Engine.Woken -> true (* the releaser handed us its permit *)
    | Engine.Timed_out -> false

let release s =
  let rec hand_off () =
    match Fifo.pop s.queue with
    | None -> s.count <- s.count + 1
    | Some h ->
      if Engine.handle_pending h then Engine.wake s.eng h else hand_off ()
  in
  hand_off ()

let permits s = s.count

let waiters s =
  let n = ref 0 in
  Fifo.iter (fun h -> if Engine.handle_pending h then incr n) s.queue;
  !n
