(** Write-once cells for request/reply rendezvous.

    A promise is filled exactly once; every process awaiting it (and
    any that awaits later) observes the value.  The invocation layer
    uses one promise per outstanding request. *)

type 'a t

val create : Engine.t -> 'a t

val fill : 'a t -> 'a -> bool
(** Resolve the promise, waking all waiters.  Returns [false] (and
    changes nothing) if it was already filled. *)

val await : ?timeout:Eden_util.Time.t -> 'a t -> 'a option
(** Block until filled; [None] only if [timeout] elapsed first.
    Returns immediately when already filled. *)

val peek : 'a t -> 'a option
val is_filled : 'a t -> bool
