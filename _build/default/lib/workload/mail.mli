(** A multi-user mail system — the paper's motivating "integration"
    scenario: users on different node machines sharing information
    through objects.

    Three Eden types: a {e mailbox} per user (on the user's own node),
    a shared {e registry} mapping user names to mailbox capabilities,
    and the messages themselves as plain values.  {!run} drives a
    send/receive workload and reports delivery statistics. *)

open Eden_util
open Eden_kernel

val mailbox_type : Typemgr.t
(** Operations: ["deposit"] [Str from; Str body] -> [];
    ["fetch_all"] [] -> [List of Pair(from, body)] (empties the box);
    ["count"] [] -> [Int]. *)

val registry_type : Typemgr.t
(** Operations: ["register"] [Str user; Cap mailbox] -> [];
    ["lookup"] [Str user] -> [Cap mailbox];
    ["users"] [] -> [List of Str]. *)

val register_types : Cluster.t -> unit

type setup = {
  registry : Capability.t;
  mailboxes : (string * int * Capability.t) list;
      (** user name, home node, mailbox capability *)
}

val build :
  Cluster.t -> registry_node:int -> users_per_node:int ->
  (setup, Error.t) result
(** Blocking.  Create one mailbox per user on the user's home node and
    a registry on [registry_node]; users are named ["u<node>.<k>"]. *)

type results = {
  sent : int;
  send_failures : int;
  fetched : int;  (** messages eventually read by their recipients *)
  send_latency : Stats.t;  (** lookup + deposit time, seconds *)
}

val run :
  Cluster.t ->
  setup ->
  messages_per_user:int ->
  think_mean_s:float ->
  results
(** Blocking-free: spawns one sender process per user (messages to
    uniformly random recipients via registry lookup), runs the cluster
    to completion, then drains every mailbox. *)
