lib/workload/compile.mli: Capability Cluster Eden_kernel Eden_util Error Stats Typemgr
