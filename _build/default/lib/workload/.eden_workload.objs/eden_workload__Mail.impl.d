lib/workload/mail.ml: Api Array Capability Cluster Eden_kernel Eden_sim Eden_util Engine Error List Printf Result Splitmix Stats Time Typemgr Value
