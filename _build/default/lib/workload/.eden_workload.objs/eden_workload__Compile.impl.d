lib/workload/compile.ml: Api Cluster Eden_efs Eden_kernel Eden_sim Eden_util Engine Error List Opclass Printf Result Stats Stdlib Time Typemgr Value
