lib/workload/synthetic.mli: Cluster Eden_baseline Eden_kernel Eden_util Format Stats Time Typemgr
