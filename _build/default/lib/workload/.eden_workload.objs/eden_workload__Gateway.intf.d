lib/workload/gateway.mli: Capability Cluster Eden_kernel Eden_util Error Time Typemgr Value
