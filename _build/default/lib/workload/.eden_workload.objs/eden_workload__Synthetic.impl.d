lib/workload/synthetic.ml: Api Array Cluster Eden_baseline Eden_kernel Eden_sim Eden_util Engine Error Float Format Fun List Opclass Option Printf Splitmix Stats Time Typemgr Value
