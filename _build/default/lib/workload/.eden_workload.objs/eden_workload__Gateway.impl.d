lib/workload/gateway.ml: Cluster Eden_kernel Eden_sim Engine Opclass Result Typemgr Value
