open Eden_util
open Eden_sim
open Eden_kernel
open Api

let mailbox_type =
  Typemgr.make_exn ~name:"mailbox"
    [
      Typemgr.operation "deposit" (fun ctx args ->
          let* a, b = arg2 args in
          let* _from = str_arg a in
          let* _body = str_arg b in
          let* entries =
            Value.to_list (ctx.get_repr ())
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let* () = ctx.set_repr (Value.List (Value.Pair (a, b) :: entries)) in
          reply_unit);
      Typemgr.operation "fetch_all" (fun ctx args ->
          let* () = no_args args in
          let contents = ctx.get_repr () in
          let* () = ctx.set_repr (Value.List []) in
          reply [ contents ]);
      Typemgr.operation "count" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let* entries =
            Value.to_list (ctx.get_repr ())
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          reply [ Value.Int (List.length entries) ]);
    ]

let registry_type =
  Typemgr.make_exn ~name:"mail_registry"
    [
      Typemgr.operation "register" (fun ctx args ->
          let* a, b = arg2 args in
          let* _user = str_arg a in
          let* _box = cap_arg b in
          let* entries =
            Value.to_list (ctx.get_repr ())
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let* () = ctx.set_repr (Value.List (Value.Pair (a, b) :: entries)) in
          reply_unit);
      Typemgr.operation "lookup" ~mutates:false (fun ctx args ->
          let* v = arg1 args in
          let* user = str_arg v in
          let* entries =
            Value.to_list (ctx.get_repr ())
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let found =
            List.find_map
              (fun e ->
                match e with
                | Value.Pair (Value.Str u, Value.Cap c) when u = user -> Some c
                | _ -> None)
              entries
          in
          (match found with
          | Some c -> reply [ Value.Cap c ]
          | None -> user_error (Printf.sprintf "unknown user %S" user)));
      Typemgr.operation "users" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let* entries =
            Value.to_list (ctx.get_repr ())
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let names =
            List.filter_map
              (fun e ->
                match e with
                | Value.Pair (Value.Str u, _) -> Some (Value.Str u)
                | _ -> None)
              entries
          in
          reply [ Value.List names ]);
    ]

let register_types cl =
  Cluster.register_type cl mailbox_type;
  Cluster.register_type cl registry_type

type setup = {
  registry : Capability.t;
  mailboxes : (string * int * Capability.t) list;
}

let ( let* ) = Result.bind

let build cl ~registry_node ~users_per_node =
  let n = Cluster.node_count cl in
  let* registry =
    Cluster.create_object cl ~node:registry_node ~type_name:"mail_registry"
      (Value.List [])
  in
  let rec make_users node k acc =
    if node >= n then Ok (List.rev acc)
    else if k >= users_per_node then make_users (node + 1) 0 acc
    else begin
      let user = Printf.sprintf "u%d.%d" node k in
      let* box =
        Cluster.create_object cl ~node ~type_name:"mailbox" (Value.List [])
      in
      let* _ =
        Cluster.invoke cl ~from:node registry ~op:"register"
          [ Value.Str user; Value.Cap box ]
      in
      make_users node (k + 1) ((user, node, box) :: acc)
    end
  in
  let* mailboxes = make_users 0 0 [] in
  Ok { registry; mailboxes }

type results = {
  sent : int;
  send_failures : int;
  fetched : int;
  send_latency : Stats.t;
}

let run cl setup ~messages_per_user ~think_mean_s =
  let eng = Cluster.engine cl in
  let users = Array.of_list setup.mailboxes in
  let sent = ref 0 and send_failures = ref 0 and fetched = ref 0 in
  let send_latency = Stats.create () in
  Array.iter
    (fun (user, home, _box) ->
      let rng = Engine.fork_rng eng in
      ignore
        (Cluster.in_process cl ~name:("mail:" ^ user) (fun () ->
             for m = 1 to messages_per_user do
               Engine.delay (Time.of_sec (Splitmix.exponential rng think_mean_s));
               let recipient, _, _ =
                 users.(Splitmix.int rng (Array.length users))
               in
               let t0 = Engine.now eng in
               let outcome =
                 match
                   Cluster.invoke cl ~from:home setup.registry ~op:"lookup"
                     [ Value.Str recipient ]
                 with
                 | Ok [ Value.Cap box ] ->
                   Cluster.invoke cl ~from:home box ~op:"deposit"
                     [
                       Value.Str user;
                       Value.Str (Printf.sprintf "message %d from %s" m user);
                     ]
                 | Ok _ -> Error (Error.User_error "bad lookup reply")
                 | Error e -> Error e
               in
               match outcome with
               | Ok _ ->
                 incr sent;
                 Stats.add_time send_latency (Time.diff (Engine.now eng) t0)
               | Error _ -> incr send_failures
             done))
        )
    users;
  Cluster.run cl;
  (* Recipients drain their boxes. *)
  Array.iter
    (fun (_user, home, box) ->
      ignore
        (Cluster.in_process cl (fun () ->
             match Cluster.invoke cl ~from:home box ~op:"fetch_all" [] with
             | Ok [ Value.List msgs ] -> fetched := !fetched + List.length msgs
             | Ok _ | Error _ -> ())))
    users;
  Cluster.run cl;
  { sent = !sent; send_failures = !send_failures; fetched = !fetched;
    send_latency }
