(** Foreign machines behind an object-like interface.

    The paper's §2: "'foreign' machines will be interfaced to the
    system through such nodes.  Eden users can invoke services on
    foreign machines through an 'object-like' interface, but the
    relationship will not be symmetric."

    A gateway is an ordinary Eden object hosted on the node that owns
    the physical connection.  Its single operation relays a request
    over the (slow, serial) line to the foreign machine — modelled as a
    round-trip delay plus a pure service function — and returns the
    answer.  The line's capacity is the operation's invocation-class
    limit: a 1-line gateway serialises all traffic to the foreign
    machine, exactly like a 9600-baud connection to the department
    time-sharing system. *)

open Eden_util
open Eden_kernel

val gateway_type :
  name:string ->
  service:(Value.t list -> (Value.t list, Error.t) result) ->
  round_trip:Time.t ->
  ?lines:int ->
  unit ->
  Typemgr.t
(** A type manager whose ["request"] operation relays to [service]
    after [round_trip] of line delay.  [lines] (default 1) bounds
    concurrent outstanding requests.  Raises [Invalid_argument] if
    [lines < 1]. *)

val install :
  Cluster.t ->
  node:int ->
  name:string ->
  service:(Value.t list -> (Value.t list, Error.t) result) ->
  round_trip:Time.t ->
  ?lines:int ->
  unit ->
  (Capability.t, Error.t) result
(** Blocking.  Register the gateway type and create the gateway object
    on the interfacing node. *)
