open Eden_sim
open Eden_kernel

let gateway_type ~name ~service ~round_trip ?(lines = 1) () =
  if lines < 1 then invalid_arg "Gateway: lines must be positive";
  Typemgr.make_exn ~name
    ~classes:
      (Opclass.one_class ~name:"line" ~operations:[ "request" ] ~limit:lines)
    [
      Typemgr.operation "request" ~mutates:false (fun ctx args ->
          (* The foreign machine's time is not our CPU: the invocation
             process just waits on the line. *)
          ignore ctx;
          Engine.delay round_trip;
          service args);
    ]

let ( let* ) = Result.bind

let install cl ~node ~name ~service ~round_trip ?lines () =
  let tm = gateway_type ~name ~service ~round_trip ?lines () in
  Cluster.register_type cl tm;
  let* cap = Cluster.create_object cl ~node ~type_name:name Value.Unit in
  Ok cap
