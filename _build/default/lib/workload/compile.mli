(** The software-development workload from the paper's motivation:
    programmers on their node machines edit source files (EFS
    transactions) and run them through a {e compiler} — a frozen Eden
    object that can be "replicated and cached at several sites in order
    to save the overhead of remote invocations".

    The compiler object's operation takes a file capability, reads the
    file's current version, burns CPU proportional to the source size,
    and returns the produced object-code size.  Because the compiler is
    frozen, installing a replica on a programmer's node makes the
    compile-invocation itself local; the source read still follows the
    version's placement. *)

open Eden_util
open Eden_kernel

val compiler_type : Typemgr.t
(** Operation ["compile"] [Cap file] -> [Int object_bytes].  Cost:
    fixed front-end time plus per-byte compilation time.  Non-mutating,
    so replicas can serve it. *)

val install :
  Cluster.t ->
  node:int ->
  ?replicate_to:int list ->
  unit ->
  (Capability.t, Error.t) result
(** Blocking.  Create the compiler on [node], freeze it, and install
    replicas at [replicate_to]. *)

type results = {
  edits : int;
  compiles : int;
  failures : int;
  edit_latency : Stats.t;  (** seconds per committed edit transaction *)
  compile_latency : Stats.t;  (** seconds per compile invocation *)
}

val run :
  Cluster.t ->
  compiler:Capability.t ->
  programmers:int list ->
  cycles:int ->
  source_bytes:int ->
  results
(** Blocking-free.  Each programmer node gets its own source file
    (created on that node) and loops [cycles] times: edit (locking
    transaction replacing the source) then compile.  EFS types and the
    compiler must already be registered/installed. *)
