open Eden_util
open Eden_sim
open Eden_kernel
open Api

let front_end_time = Time.ms 10
let per_byte_time = Time.ns 1_500

let compiler_type =
  Typemgr.make_exn ~name:"compiler" ~code_bytes:65_536
    ~classes:(Opclass.one_class ~name:"all" ~operations:[ "compile" ] ~limit:4)
    [
      Typemgr.operation "compile" ~mutates:false (fun ctx args ->
          let* v = arg1 args in
          let* file = cap_arg v in
          let* r = ctx.invoke file ~op:"current" [] in
          let* vcap =
            match r with
            | [ Value.Int _; Value.Cap c ] -> Ok c
            | _ -> Error (Error.User_error "unexpected current reply")
          in
          let* r = ctx.invoke vcap ~op:"read" [] in
          let* source =
            match r with
            | [ content ] -> Ok content
            | _ -> Error (Error.User_error "unexpected read reply")
          in
          let bytes = Value.size_bytes source in
          ctx.compute
            (Time.add front_end_time (Time.scale per_byte_time bytes));
          (* Object code: roughly a third of the source, floor 64B. *)
          reply [ Value.Int (Stdlib.max 64 (bytes / 3)) ]);
    ]

let ( let* ) = Result.bind

let install cl ~node ?(replicate_to = []) () =
  Cluster.register_type cl compiler_type;
  let* cap =
    Cluster.create_object cl ~node ~type_name:"compiler" Value.Unit
  in
  let* () = Cluster.freeze cl cap in
  let* () =
    List.fold_left
      (fun acc site ->
        let* () = acc in
        Cluster.replicate cl cap ~to_node:site)
      (Ok ()) replicate_to
  in
  Ok cap

type results = {
  edits : int;
  compiles : int;
  failures : int;
  edit_latency : Stats.t;
  compile_latency : Stats.t;
}

let run cl ~compiler ~programmers ~cycles ~source_bytes =
  let eng = Cluster.engine cl in
  let edits = ref 0 and compiles = ref 0 and failures = ref 0 in
  let edit_latency = Stats.create () in
  let compile_latency = Stats.create () in
  List.iter
    (fun home ->
      ignore
        (Cluster.in_process cl ~name:(Printf.sprintf "dev%d" home) (fun () ->
             (* A private workspace on the programmer's own node. *)
             match Eden_efs.Client.make_root cl ~node:home with
             | Error _ -> incr failures
             | Ok dir -> (
               match
                 Eden_efs.Client.create_file cl ~from:home ~dir
                   ~name:"main.src" ~node:home
                   ~content:(Value.Blob source_bytes) ()
               with
               | Error _ -> incr failures
               | Ok file ->
                 for _ = 1 to cycles do
                   (* Edit: replace the source under a transaction. *)
                   let t0 = Engine.now eng in
                   let t =
                     Eden_efs.Txn.begin_txn cl ~from:home
                       ~mode:Eden_efs.Txn.Locking
                   in
                   (match
                      Eden_efs.Txn.write t file (Value.Blob source_bytes)
                    with
                   | Error _ ->
                     Eden_efs.Txn.abort t;
                     incr failures
                   | Ok () -> (
                     match Eden_efs.Txn.commit t with
                     | Eden_efs.Txn.Committed ->
                       incr edits;
                       Stats.add_time edit_latency
                         (Time.diff (Engine.now eng) t0)
                     | Eden_efs.Txn.Conflict | Eden_efs.Txn.Failed _ ->
                       incr failures));
                   (* Compile the current version. *)
                   let t0 = Engine.now eng in
                   match
                     Cluster.invoke cl ~from:home compiler ~op:"compile"
                       [ Value.Cap file ]
                   with
                   | Ok [ Value.Int _ ] ->
                     incr compiles;
                     Stats.add_time compile_latency
                       (Time.diff (Engine.now eng) t0)
                   | Ok _ | Error _ -> incr failures
                 done)))
        )
    programmers;
  Cluster.run cl;
  {
    edits = !edits;
    compiles = !compiles;
    failures = !failures;
    edit_latency;
    compile_latency;
  }
