type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  (* A trailing separator would double the closing rule. *)
  let rows =
    match t.rows with Separator :: rest -> List.rev rest | _ -> List.rev t.rows
  in
  let headers = List.map fst t.columns in
  let widths =
    let base = List.map String.length headers in
    List.fold_left
      (fun ws row ->
        match row with
        | Separator -> ws
        | Cells cells ->
          List.map2 (fun w c -> Stdlib.max w (String.length c)) ws cells)
      base rows
  in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 256 in
  let aligns = List.map snd t.columns in
  let render_cells cells =
    let parts =
      List.map2
        (fun (c, a) w -> pad a w c)
        (List.combine cells aligns)
        widths
    in
    Buffer.add_string buf ("| " ^ String.concat " | " parts ^ " |\n")
  in
  let rule () =
    let parts = List.map (fun w -> String.make (w + 2) '-') widths in
    Buffer.add_string buf ("+" ^ String.concat "+" parts ^ "+\n")
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule ();
  render_cells headers;
  rule ();
  List.iter
    (fun row ->
      match row with Separator -> rule () | Cells cells -> render_cells cells)
    rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_time tm = Time.to_string tm

let cell_float ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let cell_int n = string_of_int n

let cell_pct r = Printf.sprintf "%.1f%%" (r *. 100.0)
