(** Deterministic splittable pseudo-random numbers (splitmix64).

    Every stochastic component of the simulation draws from its own
    [Splitmix.t] stream, derived by {!split} from a single experiment
    seed, so results are reproducible regardless of the order in which
    components consume randomness. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split g] advances [g] and returns an independent child generator.
    Distinct calls yield statistically independent streams. *)

val copy : t -> t
(** [copy g] is a generator with the same future output as [g];
    advancing one does not affect the other. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.
    Raises [Invalid_argument] if [lo > hi]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. Requires [x > 0]. *)

val bool : t -> bool

val coin : t -> float -> bool
(** [coin g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> float -> float
(** [exponential g mean] draws from Exp with the given mean.
    Requires [mean > 0]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.
    Raises [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
