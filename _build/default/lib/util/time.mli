(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation.  Using integers keeps event ordering exact and the whole
    simulation deterministic; 63-bit nanoseconds overflow after ~146 years
    of simulated time, far beyond any experiment here. *)

type t = private int

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds.  Raises [Invalid_argument] if [n < 0]. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val of_sec : float -> t
(** [of_sec x] rounds [x] seconds to the nearest nanosecond.
    Raises [Invalid_argument] on negative or non-finite input. *)

val to_ns : t -> int
val to_sec : t -> float

val add : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is [a - b].  Raises [Invalid_argument] if [b > a]. *)

val scale : t -> int -> t
(** [scale t k] is [t * k].  Raises [Invalid_argument] if [k < 0]. *)

val mul_float : t -> float -> t
(** [mul_float t x] is [t * x] rounded to the nearest nanosecond.
    Raises [Invalid_argument] if [x] is negative or non-finite. *)

val divide : t -> int -> t
(** [divide t k] is [t / k] (integer division).
    Raises [Invalid_argument] if [k <= 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit, e.g. ["1.500ms"]. *)

val to_string : t -> string
