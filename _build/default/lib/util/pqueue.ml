(* Entries carry an insertion sequence number so that equal keys pop in
   FIFO order: determinism of the simulation depends on it. *)
type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }
let length h = h.size
let is_empty h = h.size = 0

let entry_cmp h a b =
  let c = h.cmp a.value b.value in
  if c <> 0 then c else Int.compare a.seq b.seq

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* Element 0 of a non-empty heap seeds the new array; values beyond
       [size] are never read. *)
    let filler = h.data.(0) in
    let ndata = Array.make ncap filler in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_cmp h h.data.(l) h.data.(!smallest) < 0 then
    smallest := l;
  if r < h.size && entry_cmp h h.data.(r) h.data.(!smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h v =
  let e = { value = v; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 16 e;
  grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0).value

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0).value in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some v -> v
  | None -> invalid_arg "Pqueue.pop_exn: empty heap"

let clear h =
  h.size <- 0;
  h.data <- [||]

let rec drain h f =
  match pop h with
  | None -> ()
  | Some v ->
    f v;
    drain h f

let to_list_unordered h =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (h.data.(i).value :: acc)
  in
  collect (h.size - 1) []
