type t = {
  mutable samples : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 16 0.0; size = 0; sorted = true }

let add s x =
  if s.size = Array.length s.samples then begin
    let ndata = Array.make (s.size * 2) 0.0 in
    Array.blit s.samples 0 ndata 0 s.size;
    s.samples <- ndata
  end;
  s.samples.(s.size) <- x;
  s.size <- s.size + 1;
  s.sorted <- false

let add_time s t = add s (Time.to_sec t)
let count s = s.size

let total s =
  let acc = ref 0.0 in
  for i = 0 to s.size - 1 do
    acc := !acc +. s.samples.(i)
  done;
  !acc

let mean s = if s.size = 0 then 0.0 else total s /. Float.of_int s.size

let stddev s =
  if s.size < 2 then 0.0
  else begin
    let m = mean s in
    let acc = ref 0.0 in
    for i = 0 to s.size - 1 do
      let d = s.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    Float.sqrt (!acc /. Float.of_int s.size)
  end

let ensure_nonempty s fn =
  if s.size = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty sample" fn)

let ensure_sorted s =
  if not s.sorted then begin
    let live = Array.sub s.samples 0 s.size in
    Array.sort Float.compare live;
    Array.blit live 0 s.samples 0 s.size;
    s.sorted <- true
  end

let min_value s =
  ensure_nonempty s "min_value";
  ensure_sorted s;
  s.samples.(0)

let max_value s =
  ensure_nonempty s "max_value";
  ensure_sorted s;
  s.samples.(s.size - 1)

let percentile s p =
  ensure_nonempty s "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: out of range";
  ensure_sorted s;
  if p = 0.0 then s.samples.(0)
  else begin
    let rank =
      Float.to_int (Float.ceil (p /. 100.0 *. Float.of_int s.size))
    in
    s.samples.(Stdlib.max 0 (rank - 1))
  end

let median s = percentile s 50.0

let merge a b =
  let m = create () in
  for i = 0 to a.size - 1 do
    add m a.samples.(i)
  done;
  for i = 0 to b.size - 1 do
    add m b.samples.(i)
  done;
  m

let pp_summary ppf s =
  if s.size = 0 then Format.pp_print_string ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.6g p50=%.6g p99=%.6g max=%.6g" s.size
      (mean s) (median s) (percentile s 99.0) (max_value s)

module Histogram = struct
  type h = {
    lo : float;
    hi : float;
    counts : int array;
    mutable under : int;
    mutable over : int;
  }

  let create ~lo ~hi ~buckets =
    if not (lo < hi) then invalid_arg "Histogram.create: lo >= hi";
    if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
    { lo; hi; counts = Array.make buckets 0; under = 0; over = 0 }

  let add h x =
    if x < h.lo then h.under <- h.under + 1
    else if x >= h.hi then h.over <- h.over + 1
    else begin
      let n = Array.length h.counts in
      let idx =
        Float.to_int ((x -. h.lo) /. (h.hi -. h.lo) *. Float.of_int n)
      in
      let idx = Stdlib.min (n - 1) idx in
      h.counts.(idx) <- h.counts.(idx) + 1
    end

  let bucket_counts h = Array.copy h.counts
  let underflow h = h.under
  let overflow h = h.over

  let total h =
    Array.fold_left ( + ) 0 h.counts + h.under + h.over

  let pp ppf h =
    let n = Array.length h.counts in
    let width = (h.hi -. h.lo) /. Float.of_int n in
    let peak = Array.fold_left Stdlib.max 1 h.counts in
    for i = 0 to n - 1 do
      let bar = h.counts.(i) * 40 / peak in
      Format.fprintf ppf "[%10.4g, %10.4g) %6d %s@."
        (h.lo +. (Float.of_int i *. width))
        (h.lo +. (Float.of_int (i + 1) *. width))
        h.counts.(i) (String.make bar '#')
    done;
    if h.under > 0 then Format.fprintf ppf "underflow %d@." h.under;
    if h.over > 0 then Format.fprintf ppf "overflow %d@." h.over
end
