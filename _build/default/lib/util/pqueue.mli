(** Mutable binary min-heap priority queue.

    The heap is ordered by a comparison supplied at creation; ties are
    broken by insertion order (FIFO among equal keys), which the event
    loop relies on for determinism. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, if any, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** Raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit

val drain : 'a t -> ('a -> unit) -> unit
(** [drain h f] pops every element in order, applying [f] to each. *)

val to_list_unordered : 'a t -> 'a list
(** Snapshot of the contents, in unspecified order. *)
