type 'a t = {
  capacity : int option;
  mutable data : 'a option array;
  mutable head : int; (* index of front element *)
  mutable size : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Fifo.create: capacity must be positive"
  | Some _ | None -> ());
  { capacity; data = Array.make 8 None; head = 0; size = 0 }

let length q = q.size
let is_empty q = q.size = 0

let is_full q =
  match q.capacity with
  | None -> false
  | Some c -> q.size >= c

let capacity q = q.capacity

let grow q =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ndata = Array.make (cap * 2) None in
    for i = 0 to q.size - 1 do
      ndata.(i) <- q.data.((q.head + i) mod cap)
    done;
    q.data <- ndata;
    q.head <- 0
  end

let push q v =
  if is_full q then false
  else begin
    grow q;
    let tail = (q.head + q.size) mod Array.length q.data in
    q.data.(tail) <- Some v;
    q.size <- q.size + 1;
    true
  end

let push_exn q v = if not (push q v) then invalid_arg "Fifo.push_exn: full"

let pop q =
  if q.size = 0 then None
  else begin
    let v = q.data.(q.head) in
    q.data.(q.head) <- None;
    q.head <- (q.head + 1) mod Array.length q.data;
    q.size <- q.size - 1;
    v
  end

let pop_exn q =
  match pop q with
  | Some v -> v
  | None -> invalid_arg "Fifo.pop_exn: empty"

let peek q = if q.size = 0 then None else q.data.(q.head)

let clear q =
  q.data <- Array.make 8 None;
  q.head <- 0;
  q.size <- 0

let iter f q =
  for i = 0 to q.size - 1 do
    match q.data.((q.head + i) mod Array.length q.data) with
    | Some v -> f v
    | None -> assert false
  done

let to_list q =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) q;
  List.rev !acc
