type t = int

let zero = 0

let ns n =
  if n < 0 then invalid_arg "Time.ns: negative";
  n

let us n = ns (n * 1_000)
let ms n = ns (n * 1_000_000)
let s n = ns (n * 1_000_000_000)

let of_sec x =
  if not (Float.is_finite x) || x < 0.0 then invalid_arg "Time.of_sec";
  Float.to_int (Float.round (x *. 1e9))

let to_ns t = t
let to_sec t = Float.of_int t /. 1e9
let add a b = a + b

let diff a b =
  if b > a then invalid_arg "Time.diff: negative result";
  a - b

let scale t k =
  if k < 0 then invalid_arg "Time.scale: negative factor";
  t * k

let mul_float t x =
  if not (Float.is_finite x) || x < 0.0 then invalid_arg "Time.mul_float";
  Float.to_int (Float.round (Float.of_int t *. x))

let divide t k =
  if k <= 0 then invalid_arg "Time.divide: non-positive divisor";
  t / k

let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( > ) (a : t) (b : t) = Stdlib.( > ) a b
let ( >= ) (a : t) (b : t) = Stdlib.( >= ) a b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b
let is_zero t = t = 0

let pp ppf t =
  if t = 0 then Format.pp_print_string ppf "0s"
  else if Stdlib.( < ) t 1_000 then Format.fprintf ppf "%dns" t
  else if Stdlib.( < ) t 1_000_000 then
    Format.fprintf ppf "%.3fus" (Float.of_int t /. 1e3)
  else if Stdlib.( < ) t 1_000_000_000 then
    Format.fprintf ppf "%.3fms" (Float.of_int t /. 1e6)
  else Format.fprintf ppf "%.3fs" (Float.of_int t /. 1e9)

let to_string t = Format.asprintf "%a" pp t
