(** Monotonic identifier generation.

    Each generator hands out consecutive non-negative integers.  Used
    for process ids, object serial numbers and event sequence numbers;
    one generator per scope keeps ids dense and deterministic. *)

type t

val create : ?first:int -> unit -> t
(** [create ?first ()] starts counting at [first] (default 0). *)

val next : t -> int
val peek : t -> int
(** The id {!next} would return, without consuming it. *)

val issued : t -> int
(** Number of ids handed out so far. *)
