(** Aligned ASCII tables for experiment output.

    Every benchmark prints its results through this module so that
    [bench/main.exe] output has one consistent, diffable format. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** [create ~title ~columns] starts a table.  [columns] must be
    non-empty. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row length does not match the
    column count. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : t -> string
val print : t -> unit
(** Render to stdout, followed by a blank line. *)

val cell_time : Time.t -> string
val cell_float : ?decimals:int -> float -> string
val cell_int : int -> string
val cell_pct : float -> string
(** Format a ratio in [\[0,1\]] as a percentage. *)
