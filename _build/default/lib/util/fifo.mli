(** Mutable FIFO queue with optional capacity bound.

    A thin ring-buffer queue used for run queues, mailboxes and device
    request queues.  Unlike [Stdlib.Queue] it supports a capacity bound
    ([push] reports refusal rather than growing) and O(1) [length]. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ?capacity ()] is an empty queue.  [capacity], if given, is
    the maximum number of queued elements; it must be positive. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val capacity : 'a t -> int option

val push : 'a t -> 'a -> bool
(** [push q v] appends [v]; returns [false] (leaving [q] unchanged) when
    the queue is at capacity. *)

val push_exn : 'a t -> 'a -> unit
(** Like {!push} but raises [Invalid_argument] when full. *)

val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
val peek : 'a t -> 'a option
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
(** Front-to-back snapshot. *)
