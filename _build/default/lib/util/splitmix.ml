type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }
let copy g = { state = g.state }

let next64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = create (next64 g)
let bits30 g = Int64.to_int (Int64.shift_right_logical (next64 g) 34)

(* Lemire-style rejection sampling over 62 usable bits keeps the result
   exactly uniform for any [n] that fits in an OCaml int. *)
let int g n =
  if n <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  let mask =
    let rec widen m = if m >= n - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next64 g) 2) land mask in
    if v < n then v else draw ()
  in
  draw ()

let int_in g lo hi =
  if lo > hi then invalid_arg "Splitmix.int_in: empty range";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 random bits into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next64 g) 11) in
  Float.of_int bits *. 0x1.0p-53

let float g x =
  if not (Float.is_finite x) || x <= 0.0 then invalid_arg "Splitmix.float";
  unit_float g *. x

let bool g = Int64.logand (next64 g) 1L = 1L

let coin g p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else unit_float g < p

let exponential g mean =
  if not (Float.is_finite mean) || mean <= 0.0 then
    invalid_arg "Splitmix.exponential";
  let u = 1.0 -. unit_float g in
  -.mean *. Float.log u

let choose g a =
  if Array.length a = 0 then invalid_arg "Splitmix.choose: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
