lib/util/pqueue.ml: Array Int
