lib/util/stats.mli: Format Time
