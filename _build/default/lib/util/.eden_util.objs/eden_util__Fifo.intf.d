lib/util/fifo.mli:
