lib/util/pqueue.mli:
