lib/util/splitmix.ml: Array Float Int64
