lib/util/idgen.mli:
