lib/util/time.ml: Float Format Int Stdlib
