lib/util/table.mli: Time
