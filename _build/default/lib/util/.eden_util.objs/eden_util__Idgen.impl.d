lib/util/idgen.ml:
