lib/util/splitmix.mli:
