type t = { first : int; mutable counter : int }

let create ?(first = 0) () = { first; counter = first }

let next t =
  let id = t.counter in
  t.counter <- t.counter + 1;
  id

let peek t = t.counter
let issued t = t.counter - t.first
