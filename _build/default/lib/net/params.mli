(** Physical and MAC-layer parameters of the Ethernet model.

    Defaults follow the 1980 DIX specification the Eden paper cites:
    10 Mb/s, 51.2 us slot time, 64-byte minimum and 1518-byte maximum
    frames, truncated binary exponential backoff with 16 attempts. *)

type t = {
  bandwidth_bps : int;  (** raw signalling rate in bits per second *)
  slot : Eden_util.Time.t;  (** contention slot (2x worst-case propagation) *)
  prop_delay : Eden_util.Time.t;  (** one-way propagation to a receiver *)
  jam : Eden_util.Time.t;  (** medium occupancy after a collision *)
  max_attempts : int;  (** transmission attempts before dropping *)
  backoff_limit : int;  (** exponent ceiling of the backoff window *)
  min_frame_bytes : int;  (** short frames are padded to this *)
  max_frame_bytes : int;  (** larger payloads must be fragmented above *)
  overhead_bytes : int;  (** preamble + header + CRC per frame *)
}

val default : t
(** The standard 10 Mb/s Ethernet. *)

val experimental : t
(** The 2.94 Mb/s Experimental Ethernet of Metcalfe & Boggs, which the
    Eden group measured in [Almes & Lazowska 1979]. *)

val frame_time : t -> payload_bytes:int -> Eden_util.Time.t
(** Time the medium is occupied by one frame carrying [payload_bytes]
    (padding and overhead included).  Raises [Invalid_argument] if
    [payload_bytes] is negative or exceeds [max_frame_bytes]. *)

val validate : t -> unit
(** Raises [Invalid_argument] if any field is out of range. *)
