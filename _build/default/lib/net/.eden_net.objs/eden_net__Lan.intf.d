lib/net/lan.mli: Eden_sim Eden_util Params
