lib/net/internet.ml: Array Eden_sim Eden_util Engine Lan Msglink Printf Time
