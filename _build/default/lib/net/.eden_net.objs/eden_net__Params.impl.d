lib/net/params.ml: Eden_util Stdlib Time
