lib/net/msglink.mli: Eden_sim Lan Params
