lib/net/params.mli: Eden_util
