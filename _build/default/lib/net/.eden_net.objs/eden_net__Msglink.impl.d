lib/net/msglink.ml: Eden_util Hashtbl Lan Option Params Stdlib
