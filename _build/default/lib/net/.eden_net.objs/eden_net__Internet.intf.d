lib/net/internet.mli: Eden_sim Eden_util Params
