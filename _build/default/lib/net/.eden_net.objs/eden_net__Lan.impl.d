lib/net/lan.ml: Array Condition Eden_sim Eden_util Engine Format List Mailbox Params Printf Splitmix Stats Stdlib Time Trace
