open Eden_util

type t = {
  bandwidth_bps : int;
  slot : Time.t;
  prop_delay : Time.t;
  jam : Time.t;
  max_attempts : int;
  backoff_limit : int;
  min_frame_bytes : int;
  max_frame_bytes : int;
  overhead_bytes : int;
}

let default =
  {
    bandwidth_bps = 10_000_000;
    slot = Time.ns 51_200;
    prop_delay = Time.us 5;
    jam = Time.ns 4_800;
    max_attempts = 16;
    backoff_limit = 10;
    min_frame_bytes = 64;
    max_frame_bytes = 1_518;
    overhead_bytes = 26;
  }

let experimental =
  {
    bandwidth_bps = 2_940_000;
    slot = Time.us 16;
    prop_delay = Time.us 2;
    jam = Time.us 2;
    max_attempts = 16;
    backoff_limit = 8;
    min_frame_bytes = 32;
    max_frame_bytes = 554;
    overhead_bytes = 9;
  }

let validate p =
  if p.bandwidth_bps <= 0 then invalid_arg "Params: bandwidth must be positive";
  if p.max_attempts <= 0 then invalid_arg "Params: max_attempts must be positive";
  if p.backoff_limit <= 0 then invalid_arg "Params: backoff_limit must be positive";
  if p.min_frame_bytes <= 0 then invalid_arg "Params: min_frame_bytes must be positive";
  if p.max_frame_bytes < p.min_frame_bytes then
    invalid_arg "Params: max_frame_bytes < min_frame_bytes"

let frame_time p ~payload_bytes =
  if payload_bytes < 0 then invalid_arg "Params.frame_time: negative payload";
  if payload_bytes > p.max_frame_bytes then
    invalid_arg "Params.frame_time: payload exceeds max_frame_bytes";
  let on_wire = Stdlib.max payload_bytes p.min_frame_bytes + p.overhead_bytes in
  let bits = on_wire * 8 in
  (* bits / bandwidth seconds, computed in nanoseconds without overflow *)
  Time.ns (bits * 1_000_000_000 / p.bandwidth_bps)
