(** The node machine's pool of General Data Processors.

    Kernel and invocation processes consume CPU service time through a
    k-server FIFO queue; a 2-GDP node really does run two invocation
    processes at once and queues the rest, which is what experiment E2
    (throughput vs. GDP count) measures. *)

type t

val create : Eden_sim.Engine.t -> gdps:int -> name:string -> t
(** [gdps] must be positive. *)

val gdps : t -> int
val name : t -> string

val consume : t -> Eden_util.Time.t -> unit
(** Occupy one processor for the given service time (FIFO queueing).
    Must be called from a process.  Zero-length demands return
    immediately without queueing. *)

val busy : t -> int
val queue_length : t -> int
val busy_time : t -> Eden_util.Time.t
val utilisation : t -> over:Eden_util.Time.t -> float
val jobs_completed : t -> int
val wait_stats : t -> Eden_util.Stats.t
