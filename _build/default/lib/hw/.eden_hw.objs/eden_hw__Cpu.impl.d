lib/hw/cpu.ml: Eden_sim Eden_util Resource Time
