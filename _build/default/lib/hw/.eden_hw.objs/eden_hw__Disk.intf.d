lib/hw/disk.mli: Eden_sim Eden_util
