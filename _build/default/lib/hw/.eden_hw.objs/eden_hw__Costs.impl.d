lib/hw/costs.ml: Eden_util Float Time
