lib/hw/memory.mli:
