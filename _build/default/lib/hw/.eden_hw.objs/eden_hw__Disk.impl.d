lib/hw/disk.ml: Eden_sim Eden_util Resource Time
