lib/hw/memory.ml:
