lib/hw/machine.mli: Costs Cpu Disk Eden_sim Memory
