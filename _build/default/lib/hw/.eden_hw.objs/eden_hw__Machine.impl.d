lib/hw/machine.ml: Costs Cpu Disk Eden_sim Engine Memory
