lib/hw/cpu.mli: Eden_sim Eden_util
