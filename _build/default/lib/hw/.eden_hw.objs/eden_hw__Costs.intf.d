lib/hw/costs.mli: Eden_util
