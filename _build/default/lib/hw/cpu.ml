open Eden_util
open Eden_sim

type t = { pool : Resource.t; n : int; cname : string }

let create eng ~gdps ~name =
  if gdps <= 0 then invalid_arg "Cpu.create: gdps must be positive";
  { pool = Resource.create eng ~servers:gdps ~name; n = gdps; cname = name }

let gdps c = c.n
let name c = c.cname
let consume c t = if not (Time.is_zero t) then Resource.use c.pool t
let busy c = Resource.busy c.pool
let queue_length c = Resource.queue_length c.pool
let busy_time c = Resource.busy_time c.pool
let utilisation c ~over = Resource.utilisation c.pool ~over
let jobs_completed c = Resource.jobs_completed c.pool
let wait_stats c = Resource.wait_stats c.pool
