(** Primary-memory accounting for a node machine.

    Tracks bytes in use against a fixed budget.  The kernel reserves
    memory for each active object's segments and short-term state;
    exhaustion makes activation fail, which is how the paper's memory
    ceiling bounds the active-object population of a node. *)

type t

val create : bytes:int -> t
(** [bytes] must be positive. *)

val capacity : t -> int
val in_use : t -> int
val available : t -> int
val peak : t -> int
(** High-water mark of {!in_use}. *)

val reserve : t -> int -> (unit, [ `Out_of_memory ]) result
(** Claim bytes; fails (claiming nothing) if fewer are available.
    Raises [Invalid_argument] on a negative size. *)

val release : t -> int -> unit
(** Return bytes.  Raises [Invalid_argument] when releasing more than
    is in use (an accounting bug). *)
