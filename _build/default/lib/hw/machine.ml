open Eden_sim

type config = {
  name : string;
  gdps : int;
  memory_bytes : int;
  disk_profile : Disk.profile;
  costs : Costs.t;
}

let default_config ~name =
  {
    name;
    gdps = 2;
    memory_bytes = 1_000_000;
    disk_profile = Disk.small_profile;
    costs = Costs.default;
  }

let upgraded_config ~name =
  { (default_config ~name) with gdps = 4; memory_bytes = 2_500_000 }

let file_server_config ~name =
  {
    (default_config ~name) with
    memory_bytes = 2_500_000;
    disk_profile = Disk.server_profile;
  }

type t = {
  cfg : config;
  eng : Engine.t;
  m_cpu : Cpu.t;
  m_mem : Memory.t;
  m_disk : Disk.t;
}

let create eng cfg =
  {
    cfg;
    eng;
    m_cpu = Cpu.create eng ~gdps:cfg.gdps ~name:(cfg.name ^ ".cpu");
    m_mem = Memory.create ~bytes:cfg.memory_bytes;
    m_disk = Disk.create eng ~profile:cfg.disk_profile ~name:(cfg.name ^ ".disk");
  }

let config m = m.cfg
let name m = m.cfg.name
let cpu m = m.m_cpu
let memory m = m.m_mem
let disk m = m.m_disk
let engine m = m.eng
