(** An Eden node machine.

    Composes the processor pool, primary memory and mass storage of one
    node (Figure 2 of the paper).  The network interface is attached by
    the kernel layer, which joins machines to a LAN. *)

type config = {
  name : string;
  gdps : int;  (** General Data Processors in the central system *)
  memory_bytes : int;
  disk_profile : Disk.profile;
  costs : Costs.t;
}

val default_config : name:string -> config
(** The default Eden node: 2 GDPs, 1 MB of memory, a small local disk. *)

val upgraded_config : name:string -> config
(** The "field upgraded" node: 4 GDPs and 2.5 MB. *)

val file_server_config : name:string -> config
(** A node configured as a file server: 2 GDPs, 2.5 MB, 300 MB disk. *)

type t

val create : Eden_sim.Engine.t -> config -> t
val config : t -> config
val name : t -> string
val cpu : t -> Cpu.t
val memory : t -> Memory.t
val disk : t -> Disk.t
val engine : t -> Eden_sim.Engine.t
