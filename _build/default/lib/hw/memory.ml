type t = { capacity : int; mutable used : int; mutable peak : int }

let create ~bytes =
  if bytes <= 0 then invalid_arg "Memory.create: capacity must be positive";
  { capacity = bytes; used = 0; peak = 0 }

let capacity m = m.capacity
let in_use m = m.used
let available m = m.capacity - m.used
let peak m = m.peak

let reserve m n =
  if n < 0 then invalid_arg "Memory.reserve: negative size";
  if n > available m then Error `Out_of_memory
  else begin
    m.used <- m.used + n;
    if m.used > m.peak then m.peak <- m.used;
    Ok ()
  end

let release m n =
  if n < 0 then invalid_arg "Memory.release: negative size";
  if n > m.used then invalid_arg "Memory.release: more than in use";
  m.used <- m.used - n
