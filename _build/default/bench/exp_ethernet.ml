(* E3 — section 3 / [Almes & Lazowska 1979]: behaviour of the CSMA/CD
   Ethernet under offered load.  Reproduces the classic curves:
   throughput saturating below the raw bandwidth, the delay knee, and
   the collision growth. *)

open Eden_util
open Eden_sim
open Eden_net
open Common

let stations = 10
let payload = 500
let horizon = Time.s 2

let run_point ?(params = Params.default) offered_fraction =
  let eng = Engine.create ~seed:7L () in
  let lan = Lan.create ~params eng in
  let sts =
    Array.init stations (fun i ->
        Lan.attach lan ~name:(Printf.sprintf "s%d" i))
  in
  Array.iter (fun st -> Lan.on_receive st (fun _ -> ())) sts;
  (* Capacity in frames/s for this payload. *)
  let ft = Params.frame_time (Lan.params lan) ~payload_bytes:payload in
  let capacity_fps = 1.0 /. Time.to_sec ft in
  let per_station_rate = offered_fraction *. capacity_fps /. Float.of_int stations in
  let mean_gap = 1.0 /. per_station_rate in
  Array.iteri
    (fun i st ->
      let rng = Engine.fork_rng eng in
      let pid =
        Engine.spawn eng ~name:(Printf.sprintf "gen%d" i) (fun () ->
            let rec loop () =
              Engine.delay (Time.of_sec (Splitmix.exponential rng mean_gap));
              if Time.(Engine.now eng < horizon) then begin
                let dst = (i + 1 + Splitmix.int rng (stations - 1)) mod stations in
                Lan.send st ~dest:(Lan.Unicast dst) ~bytes:payload ();
                loop ()
              end
            in
            loop ())
      in
      Engine.set_daemon eng pid)
    sts;
  Engine.run ~until:horizon eng;
  let c = Lan.counters lan in
  let util = Lan.utilisation lan ~over:horizon in
  let delay =
    let s = Lan.latency_stats lan in
    if Stats.count s = 0 then 0.0 else Stats.mean s
  in
  let coll_per_frame =
    if c.Lan.frames_delivered = 0 then 0.0
    else Float.of_int c.Lan.collision_events /. Float.of_int c.Lan.frames_sent
  in
  (util, delay, coll_per_frame, c.Lan.frames_dropped)

(* The generation the Eden group actually measured in 1979 was the
   2.94 Mb/s Experimental Ethernet; compare its saturation point with
   the DIX standard they chose for Eden. *)
let generations_table () =
  let t =
    Table.create
      ~title:
        "E3b  Experimental (2.94 Mb/s) vs DIX (10 Mb/s) Ethernet at matched \
         relative load"
      ~columns:
        [
          ("offered", Table.Right);
          ("experimental util", Table.Right);
          ("experimental delay", Table.Right);
          ("DIX util", Table.Right);
          ("DIX delay", Table.Right);
        ]
  in
  List.iter
    (fun offered ->
      (* The experimental network's max frame is 554B; use a payload
         legal on both. *)
      let xu, xd, _, _ = run_point ~params:Params.experimental offered in
      let du, dd, _, _ = run_point ~params:Params.default offered in
      Table.add_row t
        [
          Printf.sprintf "%.2f" offered;
          Table.cell_pct xu;
          Printf.sprintf "%.2fms" (xd *. 1e3);
          Table.cell_pct du;
          Printf.sprintf "%.2fms" (dd *. 1e3);
        ])
    [ 0.25; 0.5; 0.75; 1.0; 2.0 ];
  Table.print t

let run () =
  heading "E3" "Ethernet behaviour under load (sec. 3, Almes & Lazowska '79)";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E3  %d stations, %dB frames, Poisson arrivals, horizon %s"
           stations payload (Time.to_string horizon))
      ~columns:
        [
          ("offered", Table.Right);
          ("utilisation", Table.Right);
          ("mean delay", Table.Right);
          ("collisions/frame", Table.Right);
          ("dropped", Table.Right);
        ]
  in
  List.iter
    (fun offered ->
      let util, delay, cpf, dropped = run_point offered in
      Table.add_row t
        [
          Printf.sprintf "%.2f" offered;
          Table.cell_pct util;
          Printf.sprintf "%.2fms" (delay *. 1e3);
          Printf.sprintf "%.3f" cpf;
          Table.cell_int dropped;
        ])
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 1.0; 1.5; 2.0; 4.0 ];
  Table.print t;
  generations_table ();
  note
    "expected shape: utilisation tracks offered load until saturating \
     below 100%%; delay turns a knee near saturation; collisions grow \
     with load.  Across generations: DIX wins unloaded delay on raw \
     bandwidth (0.6ms vs 1.6ms per 500B frame), while the slower \
     experimental network is MORE efficient at saturation - its \
     contention slot is a smaller fraction of its frame time, the \
     classic a/F effect from the Metcalfe-Boggs analysis."
