(* E6 — section 4.4: crash and reincarnation.  The latency of the first
   invocation after a crash (which reincarnates the object from disk)
   against the representation size, plus whole-node failure recovery. *)

open Eden_util
open Eden_kernel
open Common

let sizes = [ 1_024; 65_536; 262_144; 1_000_000 ]

let object_crash_row size =
  let cl = big_cluster ~n:2 () in
  drive cl (fun () ->
      let cap =
        must "create"
          (Cluster.create_object cl ~node:0 ~type_name:"bench_obj" Value.Unit)
      in
      ignore
        (must "grow"
           (Cluster.invoke cl ~from:0 cap ~op:"grow" [ Value.Int size ]));
      ignore (must "save" (Cluster.invoke cl ~from:0 cap ~op:"save" []));
      let warm, _ =
        timed cl (fun () -> must "ping" (Cluster.invoke cl ~from:0 cap ~op:"ping" []))
      in
      ignore (Cluster.invoke cl ~from:0 cap ~op:"die" []);
      let reincarnation, _ =
        timed cl (fun () ->
            must "ping after crash"
              (Cluster.invoke cl ~from:0 cap ~op:"ping" []))
      in
      (warm, reincarnation))

let node_crash_row size =
  let cl = big_cluster ~n:3 () in
  let cap =
    drive cl (fun () ->
        let cap =
          must "create"
            (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
               Value.Unit)
        in
        ignore
          (must "grow"
             (Cluster.invoke cl ~from:0 cap ~op:"grow" [ Value.Int size ]));
        ignore (must "save" (Cluster.invoke cl ~from:0 cap ~op:"save" []));
        cap)
  in
  Cluster.crash_node cl 0;
  Cluster.restart_node cl 0;
  drive cl (fun () ->
      (* Node 1 never invoked this object: full locate + reincarnate. *)
      let d, _ =
        timed cl (fun () ->
            must "ping after node failure"
              (Cluster.invoke cl ~from:1 cap ~op:"ping" []))
      in
      d)

let run () =
  heading "E6" "crash and reincarnation latency (sec. 4.4)";
  let t =
    Table.create ~title:"E6  first invocation after failure"
      ~columns:
        [
          ("repr size", Table.Right);
          ("warm invoke", Table.Right);
          ("after object crash", Table.Right);
          ("after node crash+restart", Table.Right);
        ]
  in
  List.iter
    (fun size ->
      let warm, reinc = object_crash_row size in
      let node_rec = node_crash_row size in
      Table.add_row t
        [
          Printf.sprintf "%dKB" (size / 1024);
          Table.cell_time warm;
          Table.cell_time reinc;
          Table.cell_time node_rec;
        ])
    sizes;
  Table.print t;
  note
    "expected shape: reincarnation = disk read of the representation + \
     activation, so it grows with size; node recovery adds the locate \
     broadcast.  No invocation is lost, only delayed."
