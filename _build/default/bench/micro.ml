(* M1-M6 — Bechamel microbenchmarks of the substrate itself: real
   wall-clock cost per operation of the simulator's hot paths.  These
   are not simulated-time experiments; they justify trusting the
   experiment harness to run large configurations. *)

open Bechamel
open Toolkit
open Eden_util
open Eden_sim

(* M1: schedule + drain one engine event. *)
let m1_engine_event =
  Test.make ~name:"M1 engine event"
    (Staged.stage (fun () ->
         let eng = Engine.create () in
         for _ = 1 to 64 do
           Engine.schedule eng ~after:(Time.us 1) (fun () -> ())
         done;
         Engine.run eng))

(* M2: spawn, run and finish a delaying process. *)
let m2_process =
  Test.make ~name:"M2 process lifecycle"
    (Staged.stage (fun () ->
         let eng = Engine.create () in
         for _ = 1 to 16 do
           ignore (Engine.spawn eng (fun () -> Engine.delay (Time.us 5)))
         done;
         Engine.run eng))

(* M3: a semaphore hand-off cycle between two processes. *)
let m3_semaphore =
  Test.make ~name:"M3 semaphore handoff"
    (Staged.stage (fun () ->
         let eng = Engine.create () in
         let sem = Semaphore.create eng ~init:0 in
         let _ =
           Engine.spawn eng (fun () ->
               for _ = 1 to 16 do
                 ignore (Semaphore.acquire sem)
               done)
         in
         let _ =
           Engine.spawn eng (fun () ->
               for _ = 1 to 16 do
                 Engine.delay (Time.us 1);
                 Semaphore.release sem
               done)
         in
         Engine.run eng))

(* M4: priority-queue churn at event-loop scale. *)
let m4_pqueue =
  Test.make ~name:"M4 pqueue push/pop x256"
    (Staged.stage (fun () ->
         let h = Pqueue.create ~cmp:Int.compare in
         for i = 0 to 255 do
           Pqueue.push h ((i * 7919) land 1023)
         done;
         while not (Pqueue.is_empty h) do
           ignore (Pqueue.pop h)
         done))

(* M5: wire-size computation over a nested value. *)
let m5_value_size =
  let open Eden_kernel in
  let v =
    Value.List
      (List.init 16 (fun i ->
           Value.Pair
             ( Value.Str (Printf.sprintf "field%d" i),
               Value.List [ Value.Int i; Value.Blob 64; Value.Bool true ] )))
  in
  Test.make ~name:"M5 value size"
    (Staged.stage (fun () -> ignore (Value.size_bytes v)))

(* M6: the deterministic PRNG. *)
let m6_splitmix =
  let g = Splitmix.create 42L in
  Test.make ~name:"M6 splitmix int"
    (Staged.stage (fun () -> ignore (Splitmix.int g 1_000_000)))

(* M7: the full stack — build a 3-node cluster, create an object, run
   20 invocations (10 remote), in real time. *)
let m7_full_stack =
  Test.make ~name:"M7 cluster + 20 invocations"
    (Staged.stage (fun () ->
         let open Eden_kernel in
         let cl = Cluster.default ~n_nodes:3 () in
         Cluster.register_type cl Common.bench_type;
         let _ =
           Cluster.in_process cl (fun () ->
               match
                 Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                   Value.Unit
               with
               | Error _ -> ()
               | Ok cap ->
                 for i = 0 to 19 do
                   ignore
                     (Cluster.invoke cl ~from:(i mod 2) cap ~op:"ping" [])
                 done)
         in
         Cluster.run cl))

let tests =
  [ m1_engine_event; m2_process; m3_semaphore; m4_pqueue; m5_value_size;
    m6_splitmix; m7_full_stack ]

let run () =
  Common.heading "M1-M6" "substrate microbenchmarks (real time, Bechamel)";
  let cfg =
    Benchmark.cfg ~limit:500
      ~quota:(Bechamel.Time.second 0.25)
      ~kde:None ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table =
    Table.create ~title:"M  nanoseconds per run (ordinary least squares)"
      ~columns:[ ("benchmark", Table.Left); ("ns/run", Table.Right) ]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result =
            Benchmark.run cfg [ Instance.monotonic_clock ] elt
          in
          let est = Analyze.one ols Instance.monotonic_clock result in
          let ns =
            match Analyze.OLS.estimates est with
            | Some (x :: _) -> x
            | Some [] | None -> Float.nan
          in
          Table.add_row table
            [ Test.Elt.name elt; Printf.sprintf "%.0f" ns ])
        (Test.elements test))
    tests;
  Table.print table;
  Common.note
    "single-event and process costs in the hundreds of nanoseconds keep \
     million-event experiments interactive."
