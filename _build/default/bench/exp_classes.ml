(* E4 — Figure 4 / section 4.2: invocation classes.  The per-class
   concurrency bound is the object's internal flow control: limit 1
   gives mutual exclusion, larger limits exploit the node's
   processors. *)

open Eden_util
open Eden_hw
open Eden_kernel
open Eden_sim
open Common

let jobs = 64
let work_each = Time.ms 5

let concurrent_type limit =
  Typemgr.make_exn
    ~name:(Printf.sprintf "classbench%d" limit)
    ~classes:(Opclass.one_class ~name:"all" ~operations:[ "work" ] ~limit)
    [
      Typemgr.operation "work" ~mutates:false (fun ctx args ->
          let open Api in
          let* () = no_args args in
          ctx.compute work_each;
          reply_unit);
    ]

let run_point limit =
  let tm = concurrent_type limit in
  let config = { (Machine.default_config ~name:"n0") with Machine.gdps = 4 } in
  let cl = Cluster.create ~configs:[ config ] () in
  Cluster.register_type cl tm;
  drive cl (fun () ->
      let cap =
        must "create"
          (Cluster.create_object cl ~node:0 ~type_name:(Typemgr.name tm)
             Value.Unit)
      in
      ignore (Cluster.invoke cl ~from:0 cap ~op:"work" []);
      let d, () =
        timed cl (fun () ->
            let ps =
              List.init jobs (fun _ ->
                  Cluster.invoke_async cl ~from:0 cap ~op:"work" [])
            in
            List.iter (fun p -> ignore (Promise.await p)) ps)
      in
      d)

let run () =
  heading "E4" "invocation-class concurrency bounds (Fig. 4, sec. 4.2)";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E4  %d x %s CPU-bound invocations of one object, 4-GDP node"
           jobs (Time.to_string work_each))
      ~columns:
        [
          ("class limit", Table.Right);
          ("makespan", Table.Right);
          ("effective parallelism", Table.Right);
        ]
  in
  let serial = Time.to_sec (Time.scale work_each jobs) in
  List.iter
    (fun limit ->
      let makespan = run_point limit in
      Table.add_row t
        [
          Table.cell_int limit;
          Table.cell_time makespan;
          Printf.sprintf "%.2f" (serial /. Time.to_sec makespan);
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print t;
  note
    "expected shape: limit 1 serialises (mutual exclusion); parallelism \
     grows with the limit and saturates near (not at) the GDP count: \
     the coordinator's dispatch and process-creation path is serial, \
     exactly the 432 bottleneck the paper worries about."
