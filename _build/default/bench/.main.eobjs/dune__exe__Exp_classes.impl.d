bench/exp_classes.ml: Api Cluster Common Eden_hw Eden_kernel Eden_sim Eden_util List Machine Opclass Printf Promise Table Time Typemgr Value
