bench/main.mli:
