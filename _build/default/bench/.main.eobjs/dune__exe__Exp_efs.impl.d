bench/exp_efs.ml: Array Client Cluster Common Eden_efs Eden_kernel Eden_sim Eden_util Engine List Printf Schema Splitmix Stats Table Time Txn Value
