bench/exp_ethernet.ml: Array Common Eden_net Eden_sim Eden_util Engine Float Lan List Params Printf Splitmix Stats Table Time
