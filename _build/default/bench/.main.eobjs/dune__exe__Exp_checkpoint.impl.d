bench/exp_checkpoint.ml: Cluster Common Eden_kernel Eden_util List Printf Stats Table Value
