bench/exp_spectrum.ml: Common Eden_baseline Eden_util Eden_workload List Printf Stats Synthetic Table Time
