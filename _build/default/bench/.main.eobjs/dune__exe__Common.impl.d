bench/common.ml: Api Cluster Eden_hw Eden_kernel Eden_sim Eden_util Engine Error List Opclass Printf Reliability Result Stats String Time Typemgr Value
