bench/exp_async.ml: Cluster Common Eden_kernel Eden_sim Eden_util List Printf Promise Table Time Value
