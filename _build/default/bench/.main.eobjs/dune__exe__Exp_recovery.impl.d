bench/exp_recovery.ml: Cluster Common Eden_kernel Eden_util List Printf Table Value
