bench/exp_mobility.ml: Cluster Common Eden_kernel Eden_util Error List Printf Stats Table Time Value
