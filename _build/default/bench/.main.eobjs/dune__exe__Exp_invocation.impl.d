bench/exp_invocation.ml: Cluster Common Eden_kernel Eden_util Eden_workload List Printf Stats Synthetic Table Time Value
