bench/exp_devel.ml: Cluster Common Compile Eden_efs Eden_kernel Eden_util Eden_workload List Printf Schema Stats Table
