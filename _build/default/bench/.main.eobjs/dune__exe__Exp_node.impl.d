bench/exp_node.ml: Cluster Common Eden_hw Eden_kernel Eden_sim Eden_util Error List Machine Printf Table Time Value
