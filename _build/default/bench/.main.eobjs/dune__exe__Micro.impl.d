bench/micro.ml: Analyze Bechamel Benchmark Cluster Common Eden_kernel Eden_sim Eden_util Engine Float Instance Int List Measure Pqueue Printf Semaphore Splitmix Staged Table Test Time Toolkit Value
