bench/exp_replication.ml: Cluster Common Eden_kernel Eden_sim Eden_util Fun List Printf Promise Stats Table Value
