bench/exp_availability.ml: Array Cluster Common Eden_kernel Eden_sim Eden_util Engine Float List Printf Splitmix Stats Table Time Value
