bench/exp_timeout.ml: Cluster Common Eden_kernel Eden_util Error List Printf Table Time Value
