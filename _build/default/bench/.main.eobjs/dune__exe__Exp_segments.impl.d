bench/exp_segments.ml: Cluster Common Eden_hw Eden_kernel Eden_sim Eden_util Fun List Printf Promise Stats Table Transport Value
