(* E14 — the paper's software-development scenario end to end: edit
   (EFS transaction) / compile (invocation of a frozen compiler
   object) cycles on every workstation, with the compiler either a
   single remote utility or replicated to the programmers' nodes. *)

open Eden_util
open Eden_kernel
open Eden_efs
open Eden_workload
open Common

let nodes = 6
let cycles = 8
let source_bytes = 4_096

let run_config ~replicated =
  let cl = Cluster.default ~n_nodes:nodes () in
  Schema.register cl;
  let compiler =
    drive cl (fun () ->
        must "install compiler"
          (Compile.install cl ~node:0
             ~replicate_to:(if replicated then List.init (nodes - 1) (fun i -> i + 1) else [])
             ()))
  in
  let programmers = List.init (nodes - 1) (fun i -> i + 1) in
  Compile.run cl ~compiler ~programmers ~cycles ~source_bytes

let run () =
  heading "E14"
    "edit/compile cycles: a frozen compiler, single vs replicated (secs. 1, 4.3)";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E14  %d programmers x %d cycles, %dB sources" (nodes - 1) cycles
           source_bytes)
      ~columns:
        [
          ("compiler placement", Table.Left);
          ("compiles", Table.Right);
          ("mean compile", Table.Right);
          ("p99 compile", Table.Right);
          ("mean edit", Table.Right);
        ]
  in
  List.iter
    (fun (label, replicated) ->
      let r = run_config ~replicated in
      if r.Compile.failures > 0 then
        note "WARNING: %d failures in %s" r.Compile.failures label;
      Table.add_row t
        [
          label;
          Table.cell_int r.Compile.compiles;
          Printf.sprintf "%.1fms" (1e3 *. Stats.mean r.Compile.compile_latency);
          Printf.sprintf "%.1fms"
            (1e3 *. Stats.percentile r.Compile.compile_latency 99.0);
          Printf.sprintf "%.1fms" (1e3 *. Stats.mean r.Compile.edit_latency);
        ])
    [ ("single copy on node 0", false); ("replicated to all nodes", true) ];
  Table.print t;
  note
    "expected shape: replicating the frozen compiler removes both the \
     remote invocation hop and the queueing at its single host; edits \
     are unaffected (sources were already local)."
