(* E5 — section 4.4: checkpoint cost against representation size and
   reliability level (checksite placement). *)

open Eden_util
open Eden_kernel
open Common

let sizes = [ 1_024; 16_384; 65_536; 262_144; 1_000_000 ]

let measure cl cap rel_arg =
  drive cl (fun () ->
      ignore
        (must "set_rel"
           (Cluster.invoke cl ~from:0 cap ~op:"set_rel" [ rel_arg ]));
      let save () =
        must "save" (Cluster.invoke cl ~from:0 cap ~op:"save" [])
      in
      ignore (save ());
      let s = mean_over cl ~warmup:0 ~iters:3 save in
      Stats.mean s)

let run () =
  heading "E5" "checkpoint cost vs size and reliability level (sec. 4.4)";
  let t =
    Table.create ~title:"E5  mean checkpoint latency"
      ~columns:
        [
          ("repr size", Table.Right);
          ("local", Table.Right);
          ("remote", Table.Right);
          ("mirrored x2", Table.Right);
        ]
  in
  List.iter
    (fun size ->
      let cell rel_arg =
        let cl = big_cluster ~n:3 () in
        let v =
          drive cl (fun () ->
              let cap =
                must "create"
                  (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                     Value.Unit)
              in
              ignore
                (must "grow"
                   (Cluster.invoke cl ~from:0 cap ~op:"grow"
                      [ Value.Int size ]));
              cap)
        in
        measure cl v rel_arg
      in
      let local = cell (Value.Int (-1)) in
      let remote = cell (Value.Int 1) in
      let mirrored = cell (Value.List [ Value.Int 1; Value.Int 2 ]) in
      Table.add_row t
        [
          Printf.sprintf "%dKB" (size / 1024);
          Printf.sprintf "%.1fms" (local *. 1e3);
          Printf.sprintf "%.1fms" (remote *. 1e3);
          Printf.sprintf "%.1fms" (mirrored *. 1e3);
        ])
    sizes;
  Table.print t;
  note
    "expected shape: cost linear in representation size; a remote \
     checksite adds the network transfer; mirrored sites overlap, so \
     mirrored ~ max(copies), not the sum."
