(* E16 — section 2: "the Eden kernel is being designed to be tolerant
   of failures in its components."  Quantified: a fixed request stream
   against durable objects while host nodes power-cycle at increasing
   rates.  Requests carry a timeout and one retry (the timeout also
   invalidates stale location hints, so the retry re-locates). *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let hosts = [ 2; 3; 4; 5 ]  (* nodes that crash; users live on 0 and 1 *)
let objects_per_host = 3
let horizon = Time.s 10
let outage = Time.ms 200
let request_timeout = Time.ms 300

type outcome = {
  attempts : int;
  ok_first : int;
  ok_retry : int;
  failed : int;
  latency : Stats.t;
}

let run_point ~mtbf_ms =
  let cl = fresh_cluster ~n:6 () in
  let eng = Cluster.engine cl in
  let stats =
    {
      attempts = 0;
      ok_first = 0;
      ok_retry = 0;
      failed = 0;
      latency = Stats.create ();
    }
  in
  let attempts = ref 0 and ok_first = ref 0 and ok_retry = ref 0 in
  let failed = ref 0 in
  let caps = ref [||] in
  let _ =
    Cluster.in_process cl (fun () ->
        caps :=
          Array.of_list
            (List.concat_map
               (fun host ->
                 List.init objects_per_host (fun _ ->
                     let cap =
                       must "create"
                         (Cluster.create_object cl ~node:host
                            ~type_name:"bench_obj" Value.Unit)
                     in
                     ignore
                       (must "save"
                          (Cluster.invoke cl ~from:host cap ~op:"save" []));
                     cap))
               hosts);
        (* Two users issue requests for the whole horizon. *)
        List.iter
          (fun user ->
            let rng = Engine.fork_rng eng in
            let pid =
              Engine.spawn eng ~name:(Printf.sprintf "user%d" user)
                (fun () ->
                  let rec loop () =
                    Engine.delay (Time.ms (20 + Splitmix.int rng 20));
                    if Time.(Engine.now eng < horizon) then begin
                      let arr = !caps in
                      let cap = arr.(Splitmix.int rng (Array.length arr)) in
                      incr attempts;
                      let t0 = Engine.now eng in
                      (match
                         Cluster.invoke cl ~from:user
                           ~timeout:request_timeout cap ~op:"ping" []
                       with
                      | Ok _ ->
                        incr ok_first;
                        Stats.add_time stats.latency
                          (Time.diff (Engine.now eng) t0)
                      | Error _ -> (
                        (* One retry: the failed attempt dropped any
                           stale hint, so this one re-locates. *)
                        match
                          Cluster.invoke cl ~from:user
                            ~timeout:request_timeout cap ~op:"ping" []
                        with
                        | Ok _ ->
                          incr ok_retry;
                          Stats.add_time stats.latency
                            (Time.diff (Engine.now eng) t0)
                        | Error _ -> incr failed));
                      loop ()
                    end
                  in
                  loop ())
            in
            Engine.set_daemon eng pid)
          [ 0; 1 ];
        (* The churn process: each host crashes with exponential
           interarrivals of the given mean, stays down for [outage]. *)
        if mtbf_ms > 0 then
          List.iter
            (fun host ->
              let rng = Engine.fork_rng eng in
              let pid =
                Engine.spawn eng ~name:(Printf.sprintf "churn%d" host)
                  (fun () ->
                    let rec loop () =
                      Engine.delay
                        (Time.of_sec
                           (Splitmix.exponential rng
                              (Float.of_int mtbf_ms /. 1000.0)));
                      if Time.(Engine.now eng < horizon) then begin
                        Cluster.crash_node cl host;
                        Engine.delay outage;
                        Cluster.restart_node cl host;
                        loop ()
                      end
                    in
                    loop ())
              in
              Engine.set_daemon eng pid)
            hosts)
  in
  Cluster.run ~until:horizon cl;
  {
    stats with
    attempts = !attempts;
    ok_first = !ok_first;
    ok_retry = !ok_retry;
    failed = !failed;
  }

let run () =
  heading "E16" "availability under node churn (sec. 2 failure tolerance)";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E16  ping stream vs power-cycling hosts (outage %s, timeout %s, \
            1 retry)"
           (Time.to_string outage)
           (Time.to_string request_timeout))
      ~columns:
        [
          ("MTBF per host", Table.Right);
          ("attempts", Table.Right);
          ("first try", Table.Right);
          ("after retry", Table.Right);
          ("unavailable", Table.Right);
          ("mean latency", Table.Right);
        ]
  in
  List.iter
    (fun (label, mtbf_ms) ->
      let r = run_point ~mtbf_ms in
      let pct n = Float.of_int n /. Float.of_int (max 1 r.attempts) in
      Table.add_row t
        [
          label;
          Table.cell_int r.attempts;
          Table.cell_pct (pct r.ok_first);
          Table.cell_pct (pct (r.ok_first + r.ok_retry));
          Table.cell_pct (pct r.failed);
          Printf.sprintf "%.2fms" (1e3 *. Stats.mean r.latency);
        ])
    [
      ("no failures", 0);
      ("5s", 5_000);
      ("2s", 2_000);
      ("1s", 1_000);
      ("0.5s", 500);
    ];
  Table.print t;
  note
    "expected shape: availability after one retry stays near the \
     fraction of time a host is up (outage/MTBF duty cycle); retries \
     recover most first-try timeouts because a timeout invalidates the \
     stale location hint and the object reincarnates from its \
     checkpoint at the restarted host."
