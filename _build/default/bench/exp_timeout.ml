(* E12 — sections 2 and 4.2: failure tolerance of the invocation
   machinery.  User-supplied timeouts fire on schedule against an
   unreachable object, and never fire spuriously against a healthy
   one. *)

open Eden_util
open Eden_kernel
open Common

let unreachable_table () =
  let t =
    Table.create
      ~title:"E12a  invocation against a powered-off node (stale hint)"
      ~columns:
        [
          ("requested timeout", Table.Right);
          ("observed wait", Table.Right);
          ("outcome", Table.Left);
        ]
  in
  List.iter
    (fun ms ->
      let cl = fresh_cluster ~n:2 () in
      let cap =
        drive cl (fun () ->
            let cap =
              must "create"
                (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                   Value.Unit)
            in
            (* Give node 1 a hint pointing at node 0. *)
            ignore (must "warm" (Cluster.invoke cl ~from:1 cap ~op:"ping" []));
            cap)
      in
      Cluster.crash_node cl 0;
      let observed, outcome =
        drive cl (fun () ->
            timed cl (fun () ->
                match
                  Cluster.invoke cl ~from:1 ~timeout:(Time.ms ms) cap
                    ~op:"ping" []
                with
                | Error Error.Timeout -> "timeout (as requested)"
                | Error e -> Error.to_string e
                | Ok _ -> "unexpected success"))
      in
      Table.add_row t
        [
          Printf.sprintf "%dms" ms;
          Table.cell_time observed;
          outcome;
        ])
    [ 10; 50; 100; 500 ];
  Table.print t

let healthy_table () =
  let t =
    Table.create
      ~title:"E12b  false-timeout rate against a healthy 5ms operation"
      ~columns:
        [
          ("timeout budget", Table.Right);
          ("attempts", Table.Right);
          ("timeouts", Table.Right);
          ("successes", Table.Right);
        ]
  in
  List.iter
    (fun ms ->
      let cl = fresh_cluster ~n:2 () in
      let timeouts, successes =
        drive cl (fun () ->
            let cap =
              must "create"
                (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                   Value.Unit)
            in
            ignore (must "warm" (Cluster.invoke cl ~from:1 cap ~op:"ping" []));
            let timeouts = ref 0 and successes = ref 0 in
            for _ = 1 to 50 do
              match
                Cluster.invoke cl ~from:1 ~timeout:(Time.ms ms) cap ~op:"work"
                  [ Value.Blob 64; Value.Int 5_000 ]
              with
              | Ok _ -> incr successes
              | Error Error.Timeout -> incr timeouts
              | Error _ -> ()
            done;
            (!timeouts, !successes))
      in
      Table.add_row t
        [
          Printf.sprintf "%dms" ms;
          Table.cell_int 50;
          Table.cell_int timeouts;
          Table.cell_int successes;
        ])
    [ 3; 10; 50; 200 ];
  Table.print t

let run () =
  heading "E12" "timeouts: prompt on failure, silent on health (sec. 4.2)";
  unreachable_table ();
  healthy_table ();
  note
    "expected shape: the observed wait equals the requested budget \
     against a dead node; generous budgets never fire against a \
     healthy object, budgets below the true service time always do."
