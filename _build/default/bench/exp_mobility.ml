(* E7 — section 4.3: object mobility.  The cost of the move primitive
   against object size, and the invocation-latency trajectory around a
   move: before, first-after (forwarded through the old host), and
   after the hint cache repairs itself. *)

open Eden_util
open Eden_kernel
open Common

let sizes = [ 1_024; 16_384; 65_536; 262_144; 524_288 ]

let row size =
  let cl = big_cluster ~n:3 () in
  drive cl (fun () ->
      let cap =
        must "create"
          (Cluster.create_object cl ~node:0 ~type_name:"bench_obj" Value.Unit)
      in
      ignore
        (must "grow"
           (Cluster.invoke cl ~from:0 cap ~op:"grow" [ Value.Int size ]));
      let ping () =
        must "ping" (Cluster.invoke cl ~from:2 cap ~op:"ping" [])
      in
      (* Warm node 2's hint toward node 0. *)
      ignore (ping ());
      let before = mean_over cl ~warmup:1 ~iters:5 ping in
      let move_time, move_result =
        timed cl (fun () -> Cluster.move cl cap ~to_node:1)
      in
      (match move_result with
      | Ok () -> ()
      | Error e -> failwith ("move: " ^ Error.to_string e));
      (* First call still aims at node 0 and gets forwarded (and node 2
         receives a hint update). *)
      let forwarded, _ = timed cl ping in
      let repaired = mean_over cl ~warmup:1 ~iters:5 ping in
      (Stats.mean before, move_time, Time.to_sec forwarded,
       Stats.mean repaired))

let run () =
  heading "E7" "object mobility (sec. 4.3)";
  let t =
    Table.create
      ~title:"E7  move cost and invocation latency around a move (node 2's view)"
      ~columns:
        [
          ("object size", Table.Right);
          ("move", Table.Right);
          ("invoke before", Table.Right);
          ("first after (forwarded)", Table.Right);
          ("repaired", Table.Right);
        ]
  in
  List.iter
    (fun size ->
      let before, move_time, forwarded, repaired = row size in
      Table.add_row t
        [
          Printf.sprintf "%dKB" (size / 1024);
          Table.cell_time move_time;
          Printf.sprintf "%.2fms" (before *. 1e3);
          Printf.sprintf "%.2fms" (forwarded *. 1e3);
          Printf.sprintf "%.2fms" (repaired *. 1e3);
        ])
    sizes;
  Table.print t;
  note
    "expected shape: move cost grows with the shipped representation; \
     the first post-move invocation pays one extra hop through the \
     forwarding pointer; the hint update restores flat cost."
