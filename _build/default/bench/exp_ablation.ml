(* E13 — ablation of the location machinery.  DESIGN.md calls out three
   mechanisms the paper leaves unspecified: the hint cache, forwarding
   pointers after moves, and coalescing of concurrent locates.  Each is
   switched off in turn to measure what it buys. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let nodes = 6
let objs = 10

(* Phase A: every node warms up against every object (all on node 0).
   Phase B: all objects move to nodes 1..5 round robin.
   Phase C: one round of invocations right after the moves.
   Phase D: three more steady rounds. *)
let scenario options =
  let configs =
    List.init nodes (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "n%d" i))
  in
  let cl = Cluster.create ~options ~configs () in
  Cluster.register_type cl bench_type;
  drive cl (fun () ->
      let caps =
        List.init objs (fun _ ->
            must "create"
              (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                 Value.Unit))
      in
      let round stats =
        for from = 0 to nodes - 1 do
          List.iter
            (fun cap ->
              let d, _ =
                timed cl (fun () ->
                    must "ping" (Cluster.invoke cl ~from cap ~op:"ping" []))
              in
              Stats.add_time stats d)
            caps
        done
      in
      let warm = Stats.create () in
      round warm;
      round warm;
      List.iteri
        (fun i cap ->
          ignore (must "move" (Cluster.move cl cap ~to_node:(1 + (i mod 5)))))
        caps;
      let first = Stats.create () in
      round first;
      let steady = Stats.create () in
      round steady;
      round steady;
      round steady;
      let frames = Transport.frames_delivered (Cluster.network cl) in
      (Stats.mean warm, Stats.mean first, Stats.mean steady, frames))

let location_table () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E13a  %d objects moved off node 0; mean invocation latency"
           objs)
      ~columns:
        [
          ("configuration", Table.Left);
          ("warm", Table.Right);
          ("first after moves", Table.Right);
          ("steady after moves", Table.Right);
          ("LAN frames", Table.Right);
        ]
  in
  let configs =
    [
      ("full kernel", Cluster.default_options);
      ( "no hint cache",
        { Cluster.default_options with Cluster.use_hint_cache = false } );
      ( "no forwarding",
        { Cluster.default_options with Cluster.use_forwarding = false } );
      ( "neither",
        {
          Cluster.default_options with
          Cluster.use_hint_cache = false;
          use_forwarding = false;
        } );
    ]
  in
  List.iter
    (fun (label, options) ->
      let warm, first, steady, remote = scenario options in
      Table.add_row t
        [
          label;
          Printf.sprintf "%.2fms" (warm *. 1e3);
          Printf.sprintf "%.2fms" (first *. 1e3);
          Printf.sprintf "%.2fms" (steady *. 1e3);
          Table.cell_int remote;
        ])
    configs;
  Table.print t

(* The locate-storm scenario from E8, with and without coalescing. *)
let storm options =
  let cl =
    Cluster.create ~options
      ~configs:
        (List.init 8 (fun i ->
             Eden_hw.Machine.default_config ~name:(Printf.sprintf "n%d" i)))
      ()
  in
  Cluster.register_type cl bench_type;
  drive cl (fun () ->
      let cap =
        must "create"
          (Cluster.create_object cl ~node:0 ~type_name:"bench_obj" Value.Unit)
      in
      let d, failures =
        timed cl (fun () ->
            let ps =
              List.concat_map
                (fun from ->
                  List.init 10 (fun _ ->
                      Cluster.invoke_async cl ~from cap ~op:"ping" []))
                (List.init 8 Fun.id)
            in
            List.fold_left
              (fun acc p ->
                match Promise.await p with
                | Some (Ok _) -> acc
                | Some (Error _) | None -> acc + 1)
              0 ps)
      in
      (d, failures))

let storm_table () =
  let t =
    Table.create
      ~title:"E13b  80 simultaneous first invocations (locate storm)"
      ~columns:
        [
          ("configuration", Table.Left);
          ("makespan", Table.Right);
          ("failed", Table.Right);
        ]
  in
  List.iter
    (fun (label, options) ->
      let d, failures = storm options in
      Table.add_row t
        [ label; Table.cell_time d; Table.cell_int failures ])
    [
      ("coalesced locates", Cluster.default_options);
      ( "independent locates",
        { Cluster.default_options with Cluster.coalesce_locates = false } );
    ];
  Table.print t

let run () =
  heading "E13" "ablation: what the location mechanisms buy (DESIGN.md)";
  location_table ();
  storm_table ();
  note
    "expected shape: dropping the hint cache taxes every remote call \
     with a locate; dropping forwarding taxes the first call after a \
     move with a nack + relocate; without coalescing, simultaneous \
     cold invocations collide in the locate window and some fail."
