(* E10 — section 5: the Eden File System.  Concurrency-control modes
   under contention (the "encapsulated concurrency control" claim) and
   the read benefit of replicated immutable versions. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Eden_efs
open Common

let n_nodes = 4
let n_files = 12
let n_txns = 16
let retries = 12

(* Build a cluster with a pool of files spread round-robin. *)
let build () =
  let cl = Cluster.default ~n_nodes () in
  Schema.register cl;
  let files =
    drive cl (fun () ->
        let root = must "root" (Client.make_root cl ~node:0) in
        Array.init n_files (fun i ->
            must "create"
              (Client.create_file cl ~from:0 ~dir:root
                 ~name:(Printf.sprintf "f%d" i) ~node:(i mod n_nodes)
                 ~content:(Value.Int 0) ())))
  in
  (cl, files)

type cc_outcome = {
  committed : int;
  conflicts : int;  (* aborts observed before eventual success/giveup *)
  gave_up : int;
  mean_latency_ms : float;
}

(* Each transaction reads-modifies-writes one file: a hot file with
   probability [hotspot], a uniform one otherwise. *)
let cc_experiment mode hotspot =
  let cl, files = build () in
  let eng = Cluster.engine cl in
  let committed = ref 0 and conflicts = ref 0 and gave_up = ref 0 in
  let latency = Stats.create () in
  (* A short lock budget keeps deadlock resolution (timeout + retry)
     from dominating the 2PL latency column. *)
  Txn.lock_timeout_ms := 300;
  for i = 0 to n_txns - 1 do
    let from = i mod n_nodes in
    let rng = Engine.fork_rng eng in
    ignore
      (Cluster.in_process cl ~name:(Printf.sprintf "txn%d" i) (fun () ->
           (* Transactions arrive over an interval, not in one burst. *)
           Engine.delay (Time.ms (Splitmix.int rng 100));
           let t0 = Engine.now eng in
           let rec attempt k =
             if k > retries then incr gave_up
             else begin
               let file =
                 if Splitmix.coin rng hotspot then files.(0)
                 else files.(Splitmix.int rng n_files)
               in
               let t = Txn.begin_txn cl ~from ~mode in
               (* Each transaction also consults two other files
                  read-only (think: configuration and an index): the
                  read-set behaviour is where the three CC modes
                  diverge. *)
               for _ = 1 to 2 do
                 let extra =
                   if Splitmix.coin rng hotspot then files.(0)
                   else files.(Splitmix.int rng n_files)
                 in
                 ignore (Txn.read t extra)
               done;
               let read =
                 match mode with
                 | Txn.Locking -> Txn.read_for_update t file
                 | Txn.Optimistic | Txn.Snapshot -> Txn.read t file
               in
               match read with
               | Ok (Value.Int v) -> (
                 ignore (Txn.write t file (Value.Int (v + 1)));
                 match Txn.commit t with
                 | Txn.Committed ->
                   incr committed;
                   Stats.add_time latency (Time.diff (Engine.now eng) t0)
                 | Txn.Conflict ->
                   incr conflicts;
                   attempt (k + 1)
                 | Txn.Failed _ ->
                   incr conflicts;
                   Txn.abort t;
                   attempt (k + 1))
               | Ok _ | Error _ ->
                 Txn.abort t;
                 incr conflicts;
                 attempt (k + 1)
             end
           in
           attempt 0))
  done;
  Cluster.run cl;
  Txn.lock_timeout_ms := 2_000;
  {
    committed = !committed;
    conflicts = !conflicts;
    gave_up = !gave_up;
    mean_latency_ms =
      (if Stats.count latency = 0 then 0.0 else 1e3 *. Stats.mean latency);
  }

let cc_table () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E10a  %d RMW + 2-read transactions, %d files: 2PL / optimistic \
            / snapshot" n_txns n_files)
      ~columns:
        [
          ("hotspot", Table.Right);
          ("mode", Table.Left);
          ("committed", Table.Right);
          ("aborts", Table.Right);
          ("mean txn time", Table.Right);
        ]
  in
  List.iter
    (fun hotspot ->
      List.iter
        (fun (label, mode) ->
          let r = cc_experiment mode hotspot in
          Table.add_row t
            [
              Printf.sprintf "%.0f%%" (hotspot *. 100.0);
              label;
              Table.cell_int r.committed;
              Table.cell_int r.conflicts;
              Printf.sprintf "%.1fms" r.mean_latency_ms;
            ])
        [
          ("2PL", Txn.Locking);
          ("optimistic", Txn.Optimistic);
          ("snapshot", Txn.Snapshot);
        ];
      Table.add_separator t)
    [ 0.0; 0.3; 0.7; 1.0 ];
  Table.print t

let replication_table () =
  let t =
    Table.create
      ~title:"E10b  read latency of a 16KB version vs replication degree"
      ~columns:
        [
          ("replicas", Table.Right);
          ("read from node 3", Table.Right);
          ("remote invocations", Table.Right);
        ]
  in
  List.iter
    (fun degree ->
      let cl = Cluster.default ~n_nodes () in
      Schema.register cl;
      let latency, remotes =
        drive cl (fun () ->
            let root = must "root" (Client.make_root cl ~node:0) in
            let file =
              must "create"
                (Client.create_file cl ~from:0 ~dir:root ~name:"big" ~node:0
                   ~content:(Value.Blob 16_384) ())
            in
            must "replicate"
              (Client.replicate_current_version cl ~from:0 file
                 ~to_nodes:(List.init degree (fun i -> i + 1)));
            (* Resolve the version once so the measurement is only the
               content read. *)
            let vcap =
              match Cluster.invoke cl ~from:3 file ~op:"current" [] with
              | Ok [ Value.Int _; Value.Cap c ] -> c
              | _ -> failwith "no current version"
            in
            let before = Cluster.stats_remote_invocations cl in
            let s =
              mean_over cl ~warmup:1 ~iters:5 (fun () ->
                  must "read" (Cluster.invoke cl ~from:3 vcap ~op:"read" []))
            in
            (Stats.mean s, Cluster.stats_remote_invocations cl - before))
      in
      Table.add_row t
        [
          Table.cell_int degree;
          Printf.sprintf "%.2fms" (latency *. 1e3);
          Table.cell_int remotes;
        ])
    [ 0; 1; 2; 3 ];
  Table.print t

let run () =
  heading "E10" "Eden File System: concurrency control and replication (sec. 5)";
  cc_table ();
  replication_table ();
  note
    "expected shape: snapshot aborts only on write-write conflicts and \
     dominates; optimistic adds read-set validation aborts as the \
     hotspot heats; 2PL pays lock waits and upgrade conflicts (reads \
     block writers).  Three replicas make node 3's reads local."
