(* E11 — section 4.2: asynchronous invocation.  Sequential synchronous
   calls against an async fan-out over the same remote objects. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let run_point fanout =
  let cl = fresh_cluster ~n:2 () in
  drive cl (fun () ->
      let caps =
        List.init fanout (fun _ ->
            must "create"
              (Cluster.create_object cl ~node:1 ~type_name:"bench_obj"
                 Value.Unit))
      in
      (* Warm hints so both runs measure steady-state. *)
      List.iter
        (fun cap -> ignore (Cluster.invoke cl ~from:0 cap ~op:"ping" []))
        caps;
      let args = [ Value.Blob 128; Value.Int 2_000 ] in
      let sync, () =
        timed cl (fun () ->
            List.iter
              (fun cap ->
                ignore (must "work" (Cluster.invoke cl ~from:0 cap ~op:"work" args)))
              caps)
      in
      let async, () =
        timed cl (fun () ->
            let ps =
              List.map
                (fun cap -> Cluster.invoke_async cl ~from:0 cap ~op:"work" args)
                caps
            in
            List.iter (fun p -> ignore (Promise.await p)) ps)
      in
      (sync, async))

let run () =
  heading "E11" "synchronous chains vs asynchronous fan-out (sec. 4.2)";
  let t =
    Table.create
      ~title:"E11  2ms remote operations on distinct objects of node 1"
      ~columns:
        [
          ("fan-out", Table.Right);
          ("sync chain", Table.Right);
          ("async fan-out", Table.Right);
          ("overlap gain", Table.Right);
        ]
  in
  List.iter
    (fun fanout ->
      let sync, async = run_point fanout in
      Table.add_row t
        [
          Table.cell_int fanout;
          Table.cell_time sync;
          Table.cell_time async;
          Printf.sprintf "%.2fx" (Time.to_sec sync /. Time.to_sec async);
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  Table.print t;
  note
    "expected shape: async overlaps network and service time; the gain \
     grows with fan-out until the target node's processors saturate."
