(* E2 — Figure 2 / section 3: node machine provisioning.  Invocation
   throughput against the GDP count (the "field upgrade" from 2 to 4
   processors), and the memory ceiling on the active-object
   population. *)

open Eden_util
open Eden_hw
open Eden_kernel
open Common

let gdp_table () =
  let t =
    Table.create ~title:"E2a  one node, 32 concurrent 10ms invocations"
      ~columns:
        [
          ("GDPs", Table.Right);
          ("makespan", Table.Right);
          ("throughput", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let base = ref None in
  List.iter
    (fun gdps ->
      let config =
        { (Machine.default_config ~name:"n0") with Machine.gdps }
      in
      let cl = Cluster.create ~configs:[ config ] () in
      Cluster.register_type cl bench_type;
      let makespan =
        drive cl (fun () ->
            let cap =
              must "create"
                (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                   Value.Unit)
            in
            ignore
              (must "warm" (Cluster.invoke cl ~from:0 cap ~op:"ping" []));
            let d, () =
              timed cl (fun () ->
                  let ps =
                    List.init 32 (fun _ ->
                        Cluster.invoke_async cl ~from:0 cap ~op:"work"
                          [ Value.Blob 0; Value.Int 10_000 ])
                  in
                  List.iter
                    (fun p -> ignore (Eden_sim.Promise.await p))
                    ps)
            in
            d)
      in
      let tput = 32.0 /. Time.to_sec makespan in
      let speedup =
        match !base with
        | None ->
          base := Some tput;
          1.0
        | Some b -> tput /. b
      in
      Table.add_row t
        [
          Table.cell_int gdps;
          Table.cell_time makespan;
          Printf.sprintf "%.0f/s" tput;
          Printf.sprintf "%.2fx" speedup;
        ])
    [ 1; 2; 4 ];
  Table.print t

let memory_table () =
  let t =
    Table.create
      ~title:"E2b  active-object capacity vs memory (64KB objects)"
      ~columns:
        [
          ("memory", Table.Right);
          ("objects activated", Table.Right);
          ("then", Table.Left);
        ]
  in
  List.iter
    (fun (label, bytes) ->
      let config =
        {
          (Machine.default_config ~name:"n0") with
          Machine.memory_bytes = bytes;
        }
      in
      let cl = Cluster.create ~configs:[ config ] () in
      Cluster.register_type cl bench_type;
      let created, stopped_by =
        drive cl (fun () ->
            let rec fill k =
              match
                Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                  (Value.Blob 65_536)
              with
              | Ok _ -> fill (k + 1)
              | Error Error.Out_of_memory -> (k, "out of memory")
              | Error e -> (k, Error.to_string e)
            in
            fill 0)
      in
      Table.add_row t
        [ label; Table.cell_int created; stopped_by ])
    [ ("1.0 MB (default)", 1_000_000); ("2.5 MB (upgraded)", 2_500_000) ];
  Table.print t

let run () =
  heading "E2" "node machine provisioning (Fig. 2, sec. 3)";
  gdp_table ();
  memory_table ();
  note
    "expected shape: doubling GDPs helps until the serial kernel path \
     dominates; memory bounds the resident object population linearly."
