(* E15 — Figure 1's "other networks": a two-segment Eden joined by a
   store-and-forward bridge.  Location transparency holds across the
   bridge; the experiments quantify what crossing it costs and how
   frozen-object replication wins it back. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let nodes_per_segment = 4

let two_building_cluster () =
  let n = 2 * nodes_per_segment in
  let configs =
    List.init n (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "n%d" i))
  in
  let cl =
    Cluster.create ~segments:[ nodes_per_segment; nodes_per_segment ]
      ~configs ()
  in
  Cluster.register_type cl bench_type;
  cl

let latency_table () =
  let t =
    Table.create
      ~title:"E15a  invocation latency: same segment vs across the bridge"
      ~columns:
        [
          ("payload", Table.Right);
          ("intra-segment", Table.Right);
          ("cross-segment", Table.Right);
          ("bridge penalty", Table.Right);
        ]
  in
  List.iter
    (fun payload ->
      let cl = two_building_cluster () in
      let intra, cross =
        drive cl (fun () ->
            let cap =
              must "create"
                (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                   Value.Unit)
            in
            let args = [ Value.Blob payload; Value.Int 0 ] in
            let measure from =
              ignore (must "warm" (Cluster.invoke cl ~from cap ~op:"work" args));
              Stats.mean
                (mean_over cl ~warmup:1 ~iters:5 (fun () ->
                     must "work" (Cluster.invoke cl ~from cap ~op:"work" args)))
            in
            (measure 1, measure nodes_per_segment))
      in
      Table.add_row t
        [
          Printf.sprintf "%dB" payload;
          Printf.sprintf "%.2fms" (intra *. 1e3);
          Printf.sprintf "%.2fms" (cross *. 1e3);
          Printf.sprintf "+%.2fms" ((cross -. intra) *. 1e3);
        ])
    [ 0; 1_024; 4_096 ];
  Table.print t

(* Users on segment 1 hammering a shared object on segment 0, with and
   without a local replica of its frozen form. *)
let replication_table () =
  let t =
    Table.create
      ~title:
        "E15b  segment-1 burst against a frozen segment-0 object (40 x 2ms)"
      ~columns:
        [
          ("configuration", Table.Left);
          ("makespan", Table.Right);
          ("bridge messages", Table.Right);
        ]
  in
  List.iter
    (fun (label, replicate) ->
      let cl = two_building_cluster () in
      let makespan =
        drive cl (fun () ->
            let cap =
              must "create"
                (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                   (Value.Blob 16_384))
            in
            must "freeze" (Cluster.freeze cl cap);
            if replicate then
              must "replicate"
                (Cluster.replicate cl cap ~to_node:nodes_per_segment);
            let d, () =
              timed cl (fun () ->
                  let ps =
                    List.concat_map
                      (fun k ->
                        let from = nodes_per_segment + k in
                        List.init 10 (fun _ ->
                            Cluster.invoke_async cl ~from cap ~op:"work"
                              [ Value.Blob 64; Value.Int 2_000 ]))
                      (List.init 4 Fun.id)
                  in
                  List.iter (fun p -> ignore (Promise.await p)) ps)
            in
            d)
      in
      Table.add_row t
        [
          label;
          Table.cell_time makespan;
          Table.cell_int (Transport.bridge_forwards (Cluster.network cl));
        ])
    [
      ("single copy across the bridge", false);
      ("replica on segment 1", true);
    ];
  Table.print t

let run () =
  heading "E15" "a two-segment Eden: the cost of the bridge (Fig. 1)";
  latency_table ();
  replication_table ();
  note
    "expected shape: the bridge adds its store-and-forward latency both \
     ways (~1ms round trip) on top of second-segment MAC time; one \
     replica on the far segment removes nearly all bridge traffic and \
     restores intra-segment service."
