(* E8 — section 4.3: frozen objects and replication.  "Such an object
   can be replicated and cached at several sites in order to save the
   overhead of remote invocations" — the frozen compiler scenario. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let nodes = 8

let build_cluster replicas =
  let cl = fresh_cluster ~n:nodes () in
  let cap =
    drive cl (fun () ->
        let cap =
          must "create"
            (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
               (Value.Blob 32_768))
        in
        ignore (must "freeze" (Cluster.freeze cl cap));
        List.iter
          (fun k ->
            ignore (must "replicate" (Cluster.replicate cl cap ~to_node:k)))
          (List.init replicas (fun i -> i + 1));
        cap)
  in
  (cl, cap)

(* Mean latency of a 2ms "compile" invoked once from every node. *)
let latency_experiment replicas =
  let cl, cap = build_cluster replicas in
  let before_remote = Cluster.stats_remote_invocations cl in
  let s =
    drive cl (fun () ->
        let s = Stats.create () in
        for from = 0 to nodes - 1 do
          let d, _ =
            timed cl (fun () ->
                must "work"
                  (Cluster.invoke cl ~from cap ~op:"work"
                     [ Value.Blob 64; Value.Int 2_000 ]))
          in
          Stats.add_time s d
        done;
        s)
  in
  (Stats.mean s, Cluster.stats_remote_invocations cl - before_remote)

(* Every node fires a burst at once: the single copy saturates. *)
let burst_experiment replicas =
  let cl, cap = build_cluster replicas in
  drive cl (fun () ->
      let d, () =
        timed cl (fun () ->
            let ps =
              List.concat_map
                (fun from ->
                  List.init 10 (fun _ ->
                      Cluster.invoke_async cl ~from cap ~op:"work"
                        [ Value.Blob 64; Value.Int 2_000 ]))
                (List.init nodes Fun.id)
            in
            List.iter (fun p -> ignore (Promise.await p)) ps)
      in
      d)

let run () =
  heading "E8" "frozen-object replication (sec. 4.3)";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E8  a frozen 32KB object invoked from all %d nodes" nodes)
      ~columns:
        [
          ("replicas", Table.Right);
          ("mean latency", Table.Right);
          ("remote invocations", Table.Right);
          ("80-burst makespan", Table.Right);
        ]
  in
  List.iter
    (fun replicas ->
      let latency, remotes = latency_experiment replicas in
      let makespan = burst_experiment replicas in
      Table.add_row t
        [
          Table.cell_int replicas;
          Printf.sprintf "%.2fms" (latency *. 1e3);
          Table.cell_int remotes;
          Table.cell_time makespan;
        ])
    [ 0; 1; 2; 4; 7 ];
  Table.print t;
  note
    "expected shape: each replica converts one node's invocations from \
     remote to local; with 7 replicas every node runs locally and the \
     burst no longer saturates the single host."
